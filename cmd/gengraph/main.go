// Command gengraph writes synthetic graphs as edge lists.
//
// Usage:
//
//	gengraph -family er -n 1000 -p 0.01 -seed 1 > g.txt
//	gengraph -family rmat -n 100000 -m 2571986 > rmat.txt
//	gengraph -family ssca -n 100000 -maxclique 100 > ssca.txt
//	gengraph -family chunglu -n 10000 -m 50000 -alpha 2.5 > pl.txt
//	gengraph -dataset Ca-HepTh > cahepth.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	dsd "repro"
	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		family    = fs.String("family", "er", "er | gnm | rmat | ssca | chunglu | collab")
		dataset   = fs.String("dataset", "", "generate a named paper dataset stand-in instead")
		div       = fs.Int("div", 0, "dataset downscale divisor (0 = dataset default)")
		n         = fs.Int("n", 1000, "vertices")
		m         = fs.Int("m", 5000, "edges (gnm/rmat/chunglu)")
		p         = fs.Float64("p", 0.01, "edge probability (er)")
		alpha     = fs.Float64("alpha", 2.5, "power-law exponent (chunglu)")
		maxClique = fs.Int("maxclique", 20, "max clique size (ssca) / team size (collab)")
		seed      = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	if *dataset != "" {
		spec, err := datasets.Get(*dataset)
		if err != nil {
			return err
		}
		if *div > 0 {
			g = spec.LoadDiv(*div)
		} else {
			g = spec.Load()
		}
	} else {
		switch *family {
		case "er":
			g = dsd.GenerateER(*n, *p, *seed)
		case "gnm":
			g = dsd.GenerateGNM(*n, *m, *seed)
		case "rmat":
			g = dsd.GenerateRMAT(*n, *m, *seed)
		case "ssca":
			g = dsd.GenerateSSCA(*n, *maxClique, *seed)
		case "chunglu":
			g = dsd.GenerateChungLu(*n, *m, *alpha, *seed)
		case "collab":
			g = dsd.GenerateCollaboration(*n, *m, *maxClique, *seed)
		default:
			return fmt.Errorf("unknown family %q", *family)
		}
	}
	return g.WriteEdgeList(out)
}
