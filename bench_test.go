// Benchmarks regenerating every table and figure of the paper's
// evaluation (quick-scale; `go run ./cmd/dsdbench -run all` produces the
// full-scale tables recorded in EXPERIMENTS.md), plus micro-benchmarks of
// the substrates the algorithms are built on.
package dsd_test

import (
	"io"
	"testing"

	dsd "repro"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/motif"
	"repro/internal/psicore"
)

// benchExpt runs one paper experiment at quick scale per iteration.
func benchExpt(b *testing.B, id string) {
	b.Helper()
	e, err := expt.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := expt.QuickConfig(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact (Section 8 + appendix).

func BenchmarkTable2Stats(b *testing.B)        { benchExpt(b, "table2") }
func BenchmarkFig8Exact(b *testing.B)          { benchExpt(b, "fig8exact") }
func BenchmarkFig8Approx(b *testing.B)         { benchExpt(b, "fig8approx") }
func BenchmarkFig9FlowShrink(b *testing.B)     { benchExpt(b, "fig9") }
func BenchmarkFig10Pruning(b *testing.B)       { benchExpt(b, "fig10") }
func BenchmarkTable3Decompose(b *testing.B)    { benchExpt(b, "table3") }
func BenchmarkTable4EMcore(b *testing.B)       { benchExpt(b, "table4") }
func BenchmarkFig11Ratio(b *testing.B)         { benchExpt(b, "fig11") }
func BenchmarkFig12ExactVsApp(b *testing.B)    { benchExpt(b, "fig12") }
func BenchmarkFig13RandomExact(b *testing.B)   { benchExpt(b, "fig13") }
func BenchmarkFig14RandomApprox(b *testing.B)  { benchExpt(b, "fig14") }
func BenchmarkTable5Densities(b *testing.B)    { benchExpt(b, "table5") }
func BenchmarkFig15PDSExact(b *testing.B)      { benchExpt(b, "fig15") }
func BenchmarkFig16PDSApprox(b *testing.B)     { benchExpt(b, "fig16") }
func BenchmarkFig17CaseStudy(b *testing.B)     { benchExpt(b, "fig17") }
func BenchmarkFig20ExtraDatasets(b *testing.B) { benchExpt(b, "fig20") }
func BenchmarkFig21PPI(b *testing.B)           { benchExpt(b, "fig21") }

// Substrate micro-benchmarks: the building blocks whose costs dominate the
// figures above.

func benchGraph() *dsd.Graph {
	return dsd.GenerateChungLu(20000, 100000, 2.5, 7)
}

func BenchmarkCliqueEnumerationTriangles(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsd.CountCliques(g, 3)
	}
}

func BenchmarkCliqueEnumeration4Cliques(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsd.CountCliques(g, 4)
	}
}

func BenchmarkKCoreDecomposition(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsd.CoreNumbers(g)
	}
}

func BenchmarkCliqueCoreDecomposition(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psicore.Decompose(g, motif.Clique{H: 3})
	}
}

func BenchmarkCoreAppTriangle(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psicore.CoreApp(g, motif.Clique{H: 3})
	}
}

func BenchmarkStarDegreesFastCounter(b *testing.B) {
	g := benchGraph()
	o := motif.Star{X: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CountAndDegrees(g)
	}
}

func BenchmarkDiamondDegreesFastCounter(b *testing.B) {
	g := benchGraph()
	o := motif.Diamond{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CountAndDegrees(g)
	}
}

func BenchmarkCoreExactTriangleMidSize(b *testing.B) {
	g := dsd.GenerateChungLu(5000, 25000, 2.5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CoreExact(g, 3)
	}
}

func BenchmarkExactTriangleMidSize(b *testing.B) {
	g := dsd.GenerateChungLu(5000, 25000, 2.5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Exact(g, 3)
	}
}

func BenchmarkPeelAppTriangle(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PeelApp(g, motif.Clique{H: 3})
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// construct+ (Algorithm 7) vs the per-instance network (Algorithm 8):
// grouping pattern instances that share a vertex set shrinks the network.
func BenchmarkPDSExactUngrouped(b *testing.B) {
	g := dsd.GenerateSSCA(400, 10, 3)
	p := dsd.DiamondPattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PExact(g, p)
	}
}

func BenchmarkPDSExactGrouped(b *testing.B) {
	g := dsd.GenerateSSCA(400, 10, 3)
	p := dsd.DiamondPattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PExactGrouped(g, p)
	}
}

// Serial vs parallel CoreExact on the multi-component stress instance:
// the located core has ten components whose search order (Pruning 2,
// densest component first) is the reverse of their optimum order, so the
// serial engine fully binary-searches component after component while the
// parallel workers share every density improvement and abort most
// searches early. The speedup is algorithmic — fewer flow solves, not
// just more cores — so it shows up even at GOMAXPROCS=1.

func benchMultiComponent() *dsd.Graph {
	return dsd.GenerateMultiCommunity(10, 30, 12, 18, 20, 1)
}

func BenchmarkCoreExactSerial(b *testing.B) {
	g := benchMultiComponent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CoreExact(g, 3)
	}
}

func BenchmarkCoreExactParallel(b *testing.B) {
	g := benchMultiComponent()
	opts := core.DefaultOptions()
	opts.Workers = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CoreExactOpts(g, 3, opts)
	}
}

// Parallel vs sequential clique-degree computation (§6.3).
func BenchmarkCliqueDegreesSequential(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsd.CliqueDegrees(g, 4)
	}
}

func BenchmarkCliqueDegreesParallel(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsd.CliqueDegreesParallel(g, 4, 0)
	}
}

// Top-down CoreApp vs bottom-up full decomposition (IncApp): the window
// strategy skips the lower cores.
func BenchmarkKMaxCoreBottomUp(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.IncApp(g, motif.Clique{H: 3})
	}
}

func BenchmarkKMaxCoreTopDown(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CoreApp(g, motif.Clique{H: 3})
	}
}

// Query-anchored densest subgraph (§6.3 variant).
func BenchmarkQueryDensest(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsd.QueryDensest(g, []int32{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// The fast star counter vs the generic subgraph-isomorphism oracle
// (Appendix D ablation).
func BenchmarkStarDegreesGenericOracle(b *testing.B) {
	g := dsd.GenerateChungLu(2000, 10000, 2.5, 7)
	o := motif.Generic{P: dsd.Star(3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CountAndDegrees(g)
	}
}

func BenchmarkStarDegreesClosedForm(b *testing.B) {
	g := dsd.GenerateChungLu(2000, 10000, 2.5, 7)
	o := motif.Star{X: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CountAndDegrees(g)
	}
}
