package obs

import (
	"sync"
	"testing"
)

// TestQueryLogNilSafe exercises every method on a nil log: the disabled
// path must cost nothing and crash nowhere.
func TestQueryLogNilSafe(t *testing.T) {
	var l *QueryLog
	l.Add(&QueryEvent{Outcome: "ok"})
	if got := l.Snapshot(0); got != nil {
		t.Fatalf("nil log Snapshot = %v, want nil", got)
	}
	if s, r, d := l.Counts(); s != 0 || r != 0 || d != 0 {
		t.Fatalf("nil log Counts = %d,%d,%d, want zeros", s, r, d)
	}
	if l.Cap() != 0 || l.SampleEvery() != 0 {
		t.Fatal("nil log Cap/SampleEvery should be zero")
	}
}

// TestQueryLogRing checks the ring is bounded and Snapshot returns
// newest-first with a working limit.
func TestQueryLogRing(t *testing.T) {
	l := NewQueryLog(4, 1)
	for i := 0; i < 10; i++ {
		l.Add(&QueryEvent{Outcome: "error", TimeUnixNs: int64(i)})
	}
	got := l.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := int64(9 - i); ev.TimeUnixNs != want {
			t.Fatalf("snapshot[%d].TimeUnixNs = %d, want %d (newest first)", i, ev.TimeUnixNs, want)
		}
	}
	if got := l.Snapshot(2); len(got) != 2 || got[0].TimeUnixNs != 9 {
		t.Fatalf("Snapshot(2) = %+v, want newest 2", got)
	}
	seen, retained, sampled := l.Counts()
	if seen != 10 || retained != 10 || sampled != 0 {
		t.Fatalf("Counts = %d,%d,%d, want 10,10,0", seen, retained, sampled)
	}
}

// TestQueryLogTailSampling is the sampling policy gate: anomalous
// events (slow, degraded, shed, error, timeout) are always retained;
// routine successes are kept one-in-N.
func TestQueryLogTailSampling(t *testing.T) {
	l := NewQueryLog(64, 4)
	for i := 0; i < 8; i++ {
		l.Add(&QueryEvent{Outcome: "ok"})
	}
	anomalies := []*QueryEvent{
		{Outcome: "ok", Slow: true},
		{Outcome: "ok", Degraded: true},
		{Outcome: "shed", Shed: true},
		{Outcome: "error"},
		{Outcome: "timeout"},
		{Outcome: "cache_hit", Degraded: true},
	}
	for _, ev := range anomalies {
		l.Add(ev)
	}
	seen, retained, sampled := l.Counts()
	if seen != 14 {
		t.Fatalf("seen = %d, want 14", seen)
	}
	// 8 OKs at 1-in-4 → 2 kept, 6 sampled away; all 6 anomalies kept.
	if retained != 8 || sampled != 6 {
		t.Fatalf("retained,sampled = %d,%d, want 8,6", retained, sampled)
	}
	var anom int
	for _, ev := range l.Snapshot(0) {
		if ev.Retain() {
			anom++
		}
	}
	if anom != len(anomalies) {
		t.Fatalf("ring holds %d anomalous events, want %d", anom, len(anomalies))
	}
}

// TestQueryLogSampleEveryOne checks sampleEvery == 1 keeps every event.
func TestQueryLogSampleEveryOne(t *testing.T) {
	l := NewQueryLog(16, 1)
	for i := 0; i < 5; i++ {
		l.Add(&QueryEvent{Outcome: "ok"})
	}
	if _, retained, sampled := l.Counts(); retained != 5 || sampled != 0 {
		t.Fatalf("retained,sampled = %d,%d, want 5,0", retained, sampled)
	}
}

// TestQueryLogDefaults checks the zero-value constructor arguments
// select the documented defaults.
func TestQueryLogDefaults(t *testing.T) {
	l := NewQueryLog(0, 0)
	if l.Cap() != DefQueryLogSize {
		t.Fatalf("Cap = %d, want %d", l.Cap(), DefQueryLogSize)
	}
	if l.SampleEvery() != DefQueryLogSample {
		t.Fatalf("SampleEvery = %d, want %d", l.SampleEvery(), DefQueryLogSample)
	}
}

// TestQueryLogConcurrent hammers the ring from many goroutines under
// the race detector: adds racing snapshots racing counts.
func TestQueryLogConcurrent(t *testing.T) {
	l := NewQueryLog(32, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out := "ok"
				if i%3 == 0 {
					out = "error"
				}
				l.Add(&QueryEvent{Outcome: out, TimeUnixNs: int64(w*1000 + i)})
				if i%17 == 0 {
					l.Snapshot(8)
					l.Counts()
				}
			}
		}(w)
	}
	wg.Wait()
	seen, retained, sampled := l.Counts()
	if seen != 1600 {
		t.Fatalf("seen = %d, want 1600", seen)
	}
	if retained+sampled != seen {
		t.Fatalf("retained %d + sampled %d != seen %d", retained, sampled, seen)
	}
	if got := l.Snapshot(0); len(got) != 32 {
		t.Fatalf("ring holds %d, want 32", len(got))
	}
}
