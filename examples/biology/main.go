// Biological motif analysis (the paper's Figure 21 case study): on a
// yeast-style protein-interaction network, the densest subgraphs for
// different patterns select different functional modules — a near-clique
// complex for 4-cliques, a hub-centered module for stars, a cycle-rich
// module for diamonds.
//
// Run with: go run ./examples/biology
package main

import (
	"fmt"
	"log"

	dsd "repro"
)

func main() {
	// A PPI stand-in with three planted functional modules.
	g, modules := dsd.GeneratePPI(1116, 2148, 7)
	names := []string{"near-clique complex", "hub module", "cycle-rich module"}
	fmt.Printf("PPI network: %d proteins, %d interactions, %d planted modules\n\n", g.N(), g.M(), len(modules))

	patterns := []struct {
		name string
		p    *dsd.Pattern
	}{
		{"edge", mustPattern("edge")},
		{"c3-star", mustPattern("c3-star")},
		{"2-triangle", mustPattern("2-triangle")},
		{"4-clique", mustPattern("4-clique")},
		{"2-star", mustPattern("2-star")},
		{"diamond", mustPattern("diamond")},
	}
	for _, pc := range patterns {
		res, err := dsd.PatternDensest(g, pc.p, dsd.AlgoCoreExact)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Vertices) == 0 {
			fmt.Printf("%-11s no instances in the network\n", pc.name)
			continue
		}
		module, overlap := bestModule(res.Vertices, modules, names)
		fmt.Printf("%-11s PDS |V|=%-4d ρ=%-9.3f → %s (overlap %.0f%%)\n",
			pc.name, len(res.Vertices), res.Density.Float(), module, 100*overlap)
	}

	fmt.Println("\nDifferent patterns surface different functional subnetworks —")
	fmt.Println("the basis for motif-aware module discovery (Wuchty et al. 2003).")
}

func mustPattern(name string) *dsd.Pattern {
	p, err := dsd.PatternByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// bestModule reports which planted module a vertex set overlaps most.
func bestModule(vs []int32, modules [][]int32, names []string) (string, float64) {
	in := make(map[int32]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	best, bestOv := "background", 0.0
	for i, mod := range modules {
		cnt := 0
		for _, v := range mod {
			if in[v] {
				cnt++
			}
		}
		if ov := float64(cnt) / float64(len(vs)); ov > bestOv {
			best, bestOv = names[i], ov
		}
	}
	return best, bestOv
}
