package kcore

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func coresEqual(t *testing.T, got, want []int32, step string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len(core) = %d, want %d", step, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: core[%d] = %d, want %d\ngot  %v\nwant %v", step, v, got[v], want[v], got, want)
		}
	}
}

func TestInsertEdgeFigure3(t *testing.T) {
	g := figure3()
	core := append([]int32(nil), Decompose(g).Core...)
	// Insert E-F's missing support: {2,3,4,5} already form a cycle; adding
	// {2,4} closes enough triangles to lift E and F into the 3-core? Check
	// against a full re-peel rather than hand-derived numbers.
	mt := graph.NewMutator(g)
	mt.Insert(2, 4)
	ng := mt.Freeze()
	InsertEdge(ng, core, 2, 4)
	coresEqual(t, core, Decompose(ng).Core, "insert {2,4}")
}

func TestDeleteEdgeFigure3(t *testing.T) {
	g := figure3()
	core := append([]int32(nil), Decompose(g).Core...)
	mt := graph.NewMutator(g)
	mt.Delete(0, 1)
	ng := mt.Freeze()
	DeleteEdge(ng, core, 0, 1)
	coresEqual(t, core, Decompose(ng).Core, "delete {0,1}")
}

// TestIncrementalMatchesDecompose maintains core numbers through long
// random insert/delete sequences and checks them against a full re-peel
// after every operation — the maintained values must be bit-identical.
func TestIncrementalMatchesDecompose(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNM(30, 60, seed)
		core := append([]int32(nil), Decompose(g).Core...)
		mt := graph.NewMutator(g)
		for step := 0; step < 150; step++ {
			u, v := rng.Intn(32), rng.Intn(32)
			if u == v {
				continue
			}
			wg := mt.Graph()
			if rng.Intn(5) < 3 { // bias toward insertion so the graph stays dense
				if !mt.Insert(u, v) {
					continue
				}
				wg = mt.Graph()
				for len(core) < wg.N() {
					core = append(core, 0)
				}
				InsertEdge(wg, core, u, v)
			} else {
				if u >= wg.N() || v >= wg.N() || !mt.Delete(u, v) {
					continue
				}
				wg = mt.Graph()
				DeleteEdge(wg, core, u, v)
			}
			coresEqual(t, core, Decompose(wg).Core, "seed/step")
		}
	}
}

func TestMaxCore(t *testing.T) {
	if got := MaxCore(nil); got != 0 {
		t.Fatalf("MaxCore(nil) = %d, want 0", got)
	}
	if got := MaxCore([]int32{1, 3, 0, 2}); got != 3 {
		t.Fatalf("MaxCore = %d, want 3", got)
	}
	g := figure3()
	d := Decompose(g)
	if got := MaxCore(d.Core); got != d.KMax {
		t.Fatalf("MaxCore = %d, want KMax = %d", got, d.KMax)
	}
}
