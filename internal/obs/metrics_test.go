package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent exercises lookups and updates from many
// goroutines; meaningful under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graph := []string{"a", "b"}[i%2]
			for j := 0; j < 200; j++ {
				r.Counter("dsd_queries_total", "queries", "graph", graph).Inc()
				r.Gauge("dsd_inflight", "in flight", "graph", graph).Add(1)
				r.Histogram("dsd_query_seconds", "latency", DefLatencyBuckets, "graph", graph).Observe(0.01)
				if j%10 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("dsd_queries_total", "queries", "graph", "a").Value(); got != 4*200 {
		t.Fatalf("counter a = %d, want %d", got, 4*200)
	}
	if got := r.Histogram("dsd_query_seconds", "latency", DefLatencyBuckets, "graph", "b").Count(); got != 4*200 {
		t.Fatalf("histogram b count = %d, want %d", got, 4*200)
	}
}

// TestHistogramBuckets pins the le (inclusive upper bound) semantics at
// the boundaries.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 2.5, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2.5, 5, 7} {
		h.Observe(v)
	}
	// le=1: {0.5, 1}; le=2.5: +{1.0000001, 2.5}; le=5: +{5}; +Inf: +{7}
	want := []int64{2, 4, 5, 6}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := 0.5 + 1 + 1.0000001 + 2.5 + 5 + 7; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	h.ObserveSeconds(1500 * time.Millisecond)
	if got := h.BucketCounts(); got[1] != 5 {
		t.Fatalf("after ObserveSeconds(1.5s) le=2.5 cum = %d, want 5", got[1])
	}
}

// TestWritePrometheusGolden pins the exposition output byte-for-byte:
// sorted families, sorted series, HELP/TYPE lines, cumulative buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsd_queries_total", "Total queries.", "graph", "web", "algo", "core-exact").Add(3)
	r.Counter("dsd_queries_total", "Total queries.", "graph", "dblp", "algo", "peel").Inc()
	r.Gauge("dsd_graphs", "Loaded graphs.").Set(2)
	h := r.Histogram("dsd_query_seconds", "Query latency.", []float64{0.1, 1}, "graph", "web")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP dsd_graphs Loaded graphs.`,
		`# TYPE dsd_graphs gauge`,
		`dsd_graphs 2`,
		`# HELP dsd_queries_total Total queries.`,
		`# TYPE dsd_queries_total counter`,
		`dsd_queries_total{algo="core-exact",graph="web"} 3`,
		`dsd_queries_total{algo="peel",graph="dblp"} 1`,
		`# HELP dsd_query_seconds Query latency.`,
		`# TYPE dsd_query_seconds histogram`,
		`dsd_query_seconds_bucket{graph="web",le="0.1"} 1`,
		`dsd_query_seconds_bucket{graph="web",le="1"} 2`,
		`dsd_query_seconds_bucket{graph="web",le="+Inf"} 3`,
		`dsd_query_seconds_sum{graph="web"} 2.55`,
		`dsd_query_seconds_count{graph="web"} 3`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("golden output fails its own validator: %v", err)
	}
}

// TestLabelEscaping: label values with quotes, backslashes, newlines.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "test", "path", `a"b\c`+"\n").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c{path="a\"b\\c\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("escaped output invalid: %v", err)
	}
}

// TestRegistryPanics: misuse is a programming error and must fail fast.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	mustPanic("kind clash", func() { r.Gauge("ok_total", "clash") })
	mustPanic("bad name", func() { r.Counter("0bad", "x") })
	mustPanic("odd labels", func() { r.Counter("odd_total", "x", "k") })
	mustPanic("bad label name", func() { r.Counter("l_total", "x", "0k", "v") })
	mustPanic("unsorted buckets", func() { r.Histogram("h2", "x", []float64{2, 1}) })
}

// TestValidateExpositionRejects feeds malformed payloads through the
// validator.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no type":            "foo 1\n",
		"unknown kind":       "# TYPE foo banana\nfoo 1\n",
		"dup type":           "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"bad value":          "# TYPE foo counter\nfoo abc\n",
		"bad label block":    "# TYPE foo counter\nfoo{bad} 1\n",
		"bare histogram":     "# TYPE h histogram\nh 1\n",
		"histogram no inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram no count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"unknown comment":    "# FROB foo counter\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
	ok := "# HELP foo Something.\n# TYPE foo counter\nfoo{a=\"b\"} 1\nfoo 2\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("validator rejected valid input: %v", err)
	}
}
