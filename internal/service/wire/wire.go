// Package wire defines the JSON encoding shared by the dsdd HTTP API,
// its Go client, and the dsd CLI's -json output. Keeping the encoding in
// one place guarantees that a result printed by the CLI is byte-for-byte
// the encoding the service returns for the same query.
//
// Two request generations coexist. v1 (QueryRequest) is the original
// (graph, pattern, algo) triple and is preserved verbatim; the server
// decodes it into a dsd.Query internally. v2 (QueryV2Request) carries a
// dsd.Query serialized field for field (Query) and returns the run's
// QueryStats alongside the result, so every problem variant and knob the
// library supports is reachable over the wire.
package wire

import (
	"math"
	"time"

	dsd "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Result is the JSON form of a densest-subgraph answer. The exact density
// is carried as the µ/n rational (DensityNum/DensityDen) alongside its
// float64 value, so clients that care about Lemma-12-precision comparisons
// never have to re-derive it from the float.
type Result struct {
	Vertices   []int32 `json:"vertices"`
	Size       int     `json:"size"`
	Mu         int64   `json:"mu"`
	DensityNum int64   `json:"density_num"`
	DensityDen int64   `json:"density_den"`
	Density    float64 `json:"density"`
	// Iterations counts flow networks built and solved; PreSolveIters and
	// PreSolveSkips instrument the Greed++ pre-solver (iterations run, and
	// component searches that finished without any flow solve).
	Iterations    int     `json:"iterations,omitempty"`
	PreSolveIters int     `json:"pre_solve_iters,omitempty"`
	PreSolveSkips int     `json:"pre_solve_skips,omitempty"`
	TotalMs       float64 `json:"total_ms"`
	// Degraded marks a best-effort answer returned under a deadline or
	// accuracy budget: Vertices/Density describe the best certified
	// subgraph found, and BoundLowerNum/Den (its exact density) together
	// with BoundUpper bracket the true optimum. All four are absent on
	// exact answers.
	Degraded      bool    `json:"degraded,omitempty"`
	BoundLowerNum int64   `json:"bound_lower_num,omitempty"`
	BoundLowerDen int64   `json:"bound_lower_den,omitempty"`
	BoundUpper    float64 `json:"bound_upper,omitempty"`
}

// FromResult converts a core result into its wire form.
func FromResult(res *core.Result) *Result {
	if res == nil {
		return nil
	}
	w := &Result{
		Vertices:      res.Vertices,
		Size:          len(res.Vertices),
		Mu:            res.Mu,
		DensityNum:    res.Density.Num,
		DensityDen:    res.Density.Den,
		Density:       res.Density.Float(),
		Iterations:    res.Stats.Iterations,
		PreSolveIters: res.Stats.PreSolveIters,
		PreSolveSkips: res.Stats.PreSolveSkips,
		TotalMs:       float64(res.Stats.Total) / float64(time.Millisecond),
	}
	if res.Degraded {
		w.Degraded = true
		w.BoundLowerNum = res.Bound.Lower.Num
		w.BoundLowerDen = res.Bound.Lower.Den
		w.BoundUpper = res.Bound.Upper
	}
	return w
}

// StreamEvent is one Server-Sent Event of an anytime stream (POST
// /v1/stream): a certified refinement interval. Density (carried exactly
// as DensityNum/DensityDen alongside its float) is the witness's density
// — the interval's certified lower end; Upper is the certified top, nil
// while no upper certificate exists yet (JSON cannot encode +Inf).
// Within one stream, lower ends only rise and upper ends only fall; the
// event named "final" carries Final=true and is the last one.
type StreamEvent struct {
	Stage      string   `json:"stage"`
	DensityNum int64    `json:"density_num"`
	DensityDen int64    `json:"density_den"`
	Density    float64  `json:"density"`
	Upper      *float64 `json:"upper,omitempty"`
	Witness    []int32  `json:"witness,omitempty"`
	Size       int      `json:"size"`
	ElapsedMs  float64  `json:"elapsed_ms"`
	Final      bool     `json:"final,omitempty"`
	// Degraded mirrors Result.Degraded on a final event: the stream
	// stopped at a deadline or gap budget with the interval still open.
	Degraded bool `json:"degraded,omitempty"`
	// Cached marks a final served from the result cache (or a
	// single-flight join): no computation ran for this stream.
	Cached bool `json:"cached,omitempty"`
}

// FromAnswer converts a streamed answer into its wire event.
func FromAnswer(a dsd.Answer, cached bool) StreamEvent {
	ev := StreamEvent{
		Stage:      string(a.Stage),
		DensityNum: a.Density.Num,
		DensityDen: a.Density.Den,
		Density:    a.Density.Float(),
		Witness:    a.Witness,
		Size:       len(a.Witness),
		ElapsedMs:  float64(a.Elapsed) / float64(time.Millisecond),
		Final:      a.Final,
		Degraded:   a.Degraded,
		Cached:     cached,
	}
	if !math.IsInf(a.Bound, 1) {
		u := a.Bound
		ev.Upper = &u
	}
	return ev
}

// Query is the wire form of dsd.Query, serialized verbatim: the motif
// (Pattern by canonical name, or H for an h-clique; both empty = edge),
// the algorithm, the execution knobs, and the problem-variant
// parameters. Fields at their zero value are omitted.
type Query struct {
	Pattern    string   `json:"pattern,omitempty"`
	H          int      `json:"h,omitempty"`
	Algo       string   `json:"algo,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	Iterative  int      `json:"iterative,omitempty"`
	Shards     int      `json:"shards,omitempty"`
	ShardAddrs []string `json:"shard_addrs,omitempty"`
	Pruning    *Pruning `json:"pruning,omitempty"`
	Anchors    []int32  `json:"anchors,omitempty"`
	AtLeast    int      `json:"at_least,omitempty"`
	Eps        float64  `json:"eps,omitempty"`
	// Version pins the query to one graph version of a mutable graph
	// (0 = current head; see dsd.Solver.Apply). The service resolves 0 to
	// the head version at admission, so the echoed canonical query always
	// carries the concrete version it answered on.
	Version int64 `json:"version,omitempty"`
	// DeadlineMs / Gap are the core-exact degradation budgets (see
	// dsd.Query.Deadline and Query.Gap): a wall-clock budget after which
	// the best certified answer is returned with Degraded bounds, and a
	// relative accuracy at which component searches may stop early.
	DeadlineMs int64   `json:"deadline_ms,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
}

// Pruning is the wire form of the CoreExact pruning ablations. Every
// switch starts false; the iterative pre-solver keeps its default and is
// controlled by Query.Iterative alone.
type Pruning struct {
	Pruning1 bool `json:"pruning1"`
	Pruning2 bool `json:"pruning2"`
	Pruning3 bool `json:"pruning3"`
	Grouped  bool `json:"grouped"`
}

// ToQuery decodes the wire query into a dsd.Query, resolving the pattern
// name and algorithm eagerly so an unknown name fails here — at the
// decoding edge, with ParseAlgo's list of valid names — instead of deep
// inside a run.
func (w Query) ToQuery() (dsd.Query, error) {
	q := dsd.Query{
		H:          w.H,
		Workers:    w.Workers,
		Iterative:  w.Iterative,
		Shards:     w.Shards,
		ShardAddrs: w.ShardAddrs,
		Anchors:    w.Anchors,
		AtLeast:    w.AtLeast,
		Eps:        w.Eps,
		Version:    dsd.Version(w.Version),
		Deadline:   time.Duration(w.DeadlineMs) * time.Millisecond,
		Gap:        w.Gap,
	}
	if w.Algo != "" {
		a, err := dsd.ParseAlgo(w.Algo)
		if err != nil {
			return dsd.Query{}, err
		}
		q.Algo = a
	}
	if w.Pattern != "" {
		p, err := dsd.PatternByName(w.Pattern)
		if err != nil {
			return dsd.Query{}, err
		}
		q.Pattern = p
	}
	if w.Pruning != nil {
		q.Core = &dsd.CoreExactOptions{
			Pruning1: w.Pruning.Pruning1,
			Pruning2: w.Pruning.Pruning2,
			Pruning3: w.Pruning.Pruning3,
			Grouped:  w.Pruning.Grouped,
			// Query.Iterative governs the pre-solver; a zero here would
			// silently disable it through the Core-override resolution.
			Iterative: core.DefaultIterativeBudget,
		}
	}
	return q, nil
}

// FromQuery encodes q for the wire. Patterns are carried by canonical
// name; pass a normalized query (dsd.Query.Normalized) to echo the
// canonical form.
func FromQuery(q dsd.Query) Query {
	w := Query{
		Algo:       string(q.Algo),
		Workers:    q.Workers,
		Iterative:  q.Iterative,
		Shards:     q.Shards,
		ShardAddrs: q.ShardAddrs,
		Anchors:    q.Anchors,
		AtLeast:    q.AtLeast,
		Eps:        q.Eps,
		Version:    int64(q.Version),
		DeadlineMs: int64(q.Deadline / time.Millisecond),
		Gap:        q.Gap,
	}
	if q.Pattern != nil {
		w.Pattern = q.Psi()
	} else {
		w.H = q.H
	}
	if q.Core != nil {
		w.Pruning = &Pruning{
			Pruning1: q.Core.Pruning1,
			Pruning2: q.Core.Pruning2,
			Pruning3: q.Core.Pruning3,
			Grouped:  q.Core.Grouped,
		}
	}
	return w
}

// QueryStats is the wire form of dsd.QueryStats, serialized verbatim:
// phase timings, flow-solve counts, the Greed++ pre-solver's counters,
// and the Solver-reuse flags that prove a warm query skipped
// recomputation.
type QueryStats struct {
	DecomposeMs         float64 `json:"decompose_ms"`
	TotalMs             float64 `json:"total_ms"`
	FlowSolves          int     `json:"flow_solves"`
	FlowNodes           []int   `json:"flow_nodes,omitempty"`
	PreSolveIters       int     `json:"pre_solve_iters"`
	PreSolveSkips       int     `json:"pre_solve_skips"`
	ReusedDecomposition bool    `json:"reused_decomposition,omitempty"`
	ReusedDegrees       bool    `json:"reused_degrees,omitempty"`
	// BoundedCores: the run located on upper-bound core numbers carried
	// across a mutation instead of peeling its own graph version.
	BoundedCores bool `json:"bounded_cores,omitempty"`
	// The sharded-execution counters (zero on in-process runs): planned
	// component searches, those answered remotely, remote failures
	// re-executed locally, and straggler hedges launched.
	ShardComponents int `json:"shard_components,omitempty"`
	ShardRemote     int `json:"shard_remote,omitempty"`
	ShardFallbacks  int `json:"shard_fallbacks,omitempty"`
	ShardHedges     int `json:"shard_hedges,omitempty"`
	// FlowMs / PreSolveMs attribute the run's wall time to flow solves
	// and Greed++ pre-solve runs; on parallel runs the phases overlap
	// across workers, so the sums can exceed TotalMs.
	FlowMs     float64 `json:"flow_ms,omitempty"`
	PreSolveMs float64 `json:"pre_solve_ms,omitempty"`
	// AllocBytes / Allocs are the heap allocation attributed to the run
	// (the root span's allocation-counter delta; zero when tracing was
	// off). Process-wide counters: concurrent queries inflate each
	// other's deltas.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
	// Trace is the run's phase-level span tree, present only when the
	// serving engine ran with tracing enabled.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// FromQueryStats converts a run's stats into their wire form.
func FromQueryStats(st dsd.QueryStats) *QueryStats {
	return &QueryStats{
		DecomposeMs:         float64(st.Decompose) / float64(time.Millisecond),
		TotalMs:             float64(st.Total) / float64(time.Millisecond),
		FlowSolves:          st.Iterations,
		FlowNodes:           st.FlowNodes,
		PreSolveIters:       st.PreSolveIters,
		PreSolveSkips:       st.PreSolveSkips,
		ReusedDecomposition: st.ReusedDecomposition,
		ReusedDegrees:       st.ReusedDegrees,
		BoundedCores:        st.BoundedCores,
		ShardComponents:     st.ShardComponents,
		ShardRemote:         st.ShardRemote,
		ShardFallbacks:      st.ShardFallbacks,
		ShardHedges:         st.ShardHedges,
		FlowMs:              float64(st.FlowTime) / float64(time.Millisecond),
		PreSolveMs:          float64(st.PreSolveTime) / float64(time.Millisecond),
		AllocBytes:          st.AllocBytes,
		Allocs:              st.Allocs,
		Trace:               st.Trace,
	}
}

// QueryV2Request asks for the answer to a dsd.Query on a registered
// graph (POST /v2/query).
type QueryV2Request struct {
	Graph string `json:"graph"`
	Query Query  `json:"query"`
	// TimeoutMs optionally tightens (never loosens) the server's
	// per-query timeout for this request.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// QueryV2Response is the answer to a QueryV2Request. Query echoes the
// canonical form of the query actually answered (engine defaults
// applied, algorithm inferred); Stats is the run's QueryStats — note
// that under Cached they describe the original computation, not this
// request.
type QueryV2Response struct {
	Graph  string      `json:"graph"`
	Query  Query       `json:"query"`
	Cached bool        `json:"cached"`
	Result *Result     `json:"result"`
	Stats  *QueryStats `json:"stats,omitempty"`
}

// QueryRequest asks for the Ψ-densest subgraph of a registered graph.
type QueryRequest struct {
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`
	Algo    string `json:"algo"`
	// TimeoutMs optionally tightens (never loosens) the server's
	// per-query timeout for this request.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the answer to a QueryRequest. Cached reports whether
// the result was served without running the algorithm for this request —
// either a cache hit or a single-flight join of an in-flight computation.
type QueryResponse struct {
	Graph   string  `json:"graph"`
	Pattern string  `json:"pattern"`
	Algo    string  `json:"algo"`
	Cached  bool    `json:"cached"`
	Result  *Result `json:"result"`
}

// RegisterRequest registers a named graph, either from an inline
// whitespace edge list ("u v" per line) or from a file path readable by
// the server.
type RegisterRequest struct {
	Name  string `json:"name"`
	Edges string `json:"edges,omitempty"`
	Path  string `json:"path,omitempty"`
}

// GraphInfo is the registry's view of one graph: its name plus the
// precomputed structural summary (the paper's Table 2 columns).
type GraphInfo struct {
	Name       string  `json:"name"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	Components int     `json:"components"`
	Diameter   int     `json:"diameter"`
	MaxDegree  int     `json:"max_degree"`
	PowerLawA  float64 `json:"power_law_alpha"`
}

// FromStats builds a GraphInfo from a precomputed structural summary.
func FromStats(name string, s graph.Stats) GraphInfo {
	return GraphInfo{
		Name:       name,
		N:          s.N,
		M:          s.M,
		Components: s.Components,
		Diameter:   s.Diameter,
		MaxDegree:  s.MaxDegree,
		PowerLawA:  s.PowerLawA,
	}
}

// MutateRequest applies an edge-mutation batch to a registered graph
// (POST /v1/graphs/{g}/edges): the edges to delete and the edges to
// insert, applied atomically as one new graph version (deletes first;
// see dsd.Mutation for the skip semantics).
type MutateRequest struct {
	Delete [][2]int `json:"delete,omitempty"`
	Insert [][2]int `json:"insert,omitempty"`
}

// MutateResponse reports what the batch changed and the graph version
// now current. A batch that changed nothing echoes the unchanged
// version.
type MutateResponse struct {
	Graph          string `json:"graph"`
	Version        int64  `json:"version"`
	Inserted       int    `json:"inserted"`
	Deleted        int    `json:"deleted"`
	SkippedInserts int    `json:"skipped_inserts,omitempty"`
	SkippedDeletes int    `json:"skipped_deletes,omitempty"`
	NewVertices    int    `json:"new_vertices,omitempty"`
	N              int    `json:"n"`
	M              int    `json:"m"`
}

// GraphDetail is the per-graph lifecycle view (GET /v1/graphs/{g}):
// the registered-time structural summary, the current head version with
// live vertex/edge counts (they drift from the summary as mutations
// land), and the set of retained versions pinned queries may target.
type GraphDetail struct {
	GraphInfo
	Version int64 `json:"version"`
	// LiveN / LiveM are the head version's counts; GraphInfo's N and M
	// describe the graph as registered.
	LiveN    int     `json:"live_n"`
	LiveM    int     `json:"live_m"`
	Versions []int64 `json:"versions"`
}

// StatsResponse is the service's operational counters. Workers is the
// query-pool bound; AlgoWorkers is the per-query intra-algorithm budget
// (the two compose to the service's total parallelism). AlgoIterative is
// the per-query Greed++ pre-solve setting (0 = library default,
// negative = off, positive = iteration budget).
type StatsResponse struct {
	Graphs        int   `json:"graphs"`
	Workers       int   `json:"workers"`
	AlgoWorkers   int   `json:"algo_workers"`
	AlgoIterative int   `json:"algo_iterative"`
	Queries       int64 `json:"queries"`
	Computes      int64 `json:"computes"`
	CacheHits     int64 `json:"cache_hits"`
	Errors        int64 `json:"errors"`
	// AwaitOrphans counts abandoned computations — callers timed out on a
	// non-preemptible algorithm and the engine finished (and dropped) the
	// answer anyway; see dsd.AwaitOrphans.
	AwaitOrphans int64 `json:"await_orphans"`
	// Shed counts queries rejected at admission (503 + Retry-After)
	// because the engine's admission queue was full.
	Shed int64 `json:"shed,omitempty"`
	// Shards is the number of registered shard workers; ShardQueries
	// counts computations routed through the distributed coordinator.
	Shards       int   `json:"shards,omitempty"`
	ShardQueries int64 `json:"shard_queries,omitempty"`
	// ShardWorkers breaks the shard counters down per registered worker,
	// with the coordinator's live health view (in-flight component count,
	// exponentially-weighted remote latency).
	ShardWorkers []ShardWorkerStats `json:"shard_workers,omitempty"`
	// Streams counts anytime streaming queries (POST /v1/stream and
	// Engine.Stream).
	Streams int64 `json:"streams,omitempty"`
	// RetryAfterSeconds is the engine's current shed back-off advice —
	// the value a 503's Retry-After header would carry right now. Clients
	// can poll it to pace themselves before shedding starts.
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
}

// ShardWorkerStats is the coordinator's per-worker health and accounting
// view: components answered remotely, remote failures that fell back to
// local execution, straggler hedges launched against it, the components
// in flight on it right now, and the EWMA of its component round-trip
// latency.
type ShardWorkerStats struct {
	Addr          string  `json:"addr"`
	InFlight      int64   `json:"in_flight"`
	Remote        int64   `json:"remote"`
	Failures      int64   `json:"failures"`
	Hedges        int64   `json:"hedges"`
	Retries       int64   `json:"retries,omitempty"`
	LatencyEWMAMs float64 `json:"latency_ewma_ms"`
	// AllocBytes is the worker-reported heap allocation summed over the
	// components it answered — the coordinator's per-worker cost view
	// (0 from workers predating the accounting).
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Breaker is the worker's circuit-breaker state: "closed",
	// "half-open" or "open".
	Breaker string `json:"breaker,omitempty"`
}

// ComponentRequest is the wire v3 shard-execution message
// (POST /v3/component): one connected component of a located (k,Ψ)-core,
// shipped by a coordinator to a shard worker holding the same graph. It
// reuses the v2 Query encoding for the motif and knobs; Component is the
// component's vertex set in original ids, KLocate the core level the
// coordinator located it at, and FloorNum/FloorDen the coordinator's
// current certified global lower bound — the worker seeds its search
// floor from it and the coordinator keeps raising it via BoundRequest as
// sibling components report in.
type ComponentRequest struct {
	Graph string `json:"graph"`
	// SearchID names this in-flight search for bound rebroadcasts;
	// empty disables them.
	SearchID  string  `json:"search_id,omitempty"`
	Query     Query   `json:"query"`
	Component []int32 `json:"component"`
	KLocate   int64   `json:"k_locate"`
	FloorNum  int64   `json:"floor_num,omitempty"`
	FloorDen  int64   `json:"floor_den,omitempty"`
	// TraceID / ParentSpan propagate the coordinator's trace across the
	// process boundary: a non-empty TraceID makes the worker record its
	// phase spans under ParentSpan (the coordinator's dispatch span) and
	// ship them back in ComponentResponse.Spans, stitching both processes
	// into one tree. Empty disables worker-side tracing.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// ComponentResponse answers a ComponentRequest: the best subgraph found
// inside the component (empty witness when nothing beat the floor) with
// its exact density, plus the search's counters for the coordinator's
// stats merge.
type ComponentResponse struct {
	Graph           string  `json:"graph"`
	SearchID        string  `json:"search_id,omitempty"`
	DensityNum      int64   `json:"density_num"`
	DensityDen      int64   `json:"density_den"`
	Density         float64 `json:"density"`
	Witness         []int32 `json:"witness,omitempty"`
	FlowSolves      int     `json:"flow_solves"`
	PreSolveIters   int     `json:"pre_solve_iters"`
	PreSolveSkipped bool    `json:"pre_solve_skipped,omitempty"`
	// Upper is the search's certified upper bound on the component's
	// optimum density — the coordinator's degraded-answer substrate
	// (0 from workers predating it; the coordinator then keeps its own
	// planning bound).
	Upper   float64 `json:"upper,omitempty"`
	TotalMs float64 `json:"total_ms"`
	// FlowMs / PreSolveMs split TotalMs into its flow-solve and Greed++
	// pre-solve shares.
	FlowMs     float64 `json:"flow_ms,omitempty"`
	PreSolveMs float64 `json:"pre_solve_ms,omitempty"`
	// AllocBytes / Allocs are the worker-side heap allocation counter
	// deltas over the search — the per-component cost the coordinator
	// accumulates into its per-worker accounting. Reported even when the
	// request carried no TraceID (the worker samples its own counters).
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
	// TraceID echoes the request's trace id; Spans are the worker-side
	// phase spans of the search, parented under the request's ParentSpan,
	// for the coordinator to adopt into its trace. Both are empty when the
	// request carried no TraceID.
	TraceID string          `json:"trace_id,omitempty"`
	Spans   []obs.TraceSpan `json:"spans,omitempty"`
}

// BoundRequest rebroadcasts an improved global lower bound to an
// in-flight component search (POST /v3/bound). The bound is the exact
// density of a real subgraph found elsewhere; the worker raises the
// named search's floor, which can only remove work.
type BoundRequest struct {
	SearchID string `json:"search_id"`
	FloorNum int64  `json:"floor_num"`
	FloorDen int64  `json:"floor_den"`
}

// BoundResponse reports what a BoundRequest did: Active that the named
// search was still in flight, Raised that the floor actually rose.
type BoundResponse struct {
	SearchID string `json:"search_id"`
	Active   bool   `json:"active"`
	Raised   bool   `json:"raised"`
}

// ShardRegisterRequest registers a shard worker's base URL with a
// coordinator (POST /v3/shards) — how a `dsdd -shard-of` worker
// announces itself after binding its listener.
type ShardRegisterRequest struct {
	Addr string `json:"addr"`
}

// ShardInfo is one registered shard worker as seen by the coordinator
// (GET /v3/shards): its base URL and whether its health probe answered.
type ShardInfo struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// QueryLogSchema names the GET /v1/querylog response format.
const QueryLogSchema = "dsd-querylog/v1"

// QueryLogResponse is the wide-event query log (GET /v1/querylog):
// the retained events newest-first plus the ring's tail-sampling
// accounting — Seen events offered, Retained written to the ring, and
// Sampled routine successes dropped by the 1-in-SampleEvery policy
// (anomalous events are always retained; see obs.QueryEvent.Retain).
type QueryLogResponse struct {
	Schema      string            `json:"schema"`
	Capacity    int               `json:"capacity"`
	SampleEvery int               `json:"sample_every"`
	Seen        uint64            `json:"seen"`
	Retained    uint64            `json:"retained"`
	Sampled     uint64            `json:"sampled"`
	Events      []*obs.QueryEvent `json:"events"`
}

// ErrorResponse carries an API error.
type ErrorResponse struct {
	Error string `json:"error"`
}
