package service

import (
	"context"
	"math"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dsd "repro"
	"repro/internal/service/client"
	"repro/internal/service/wire"
)

// TestEngineStreamDeliversAndCaches: a fresh Engine.Stream delivers a
// certified monotone event sequence ending in a final, the result equals
// Solve's, and exactly the terminal result lands in the cache — a
// follow-up Solve is a hit with the identical answer.
func TestEngineStreamDeliversAndCaches(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	q := dsd.Query{Algo: dsd.AlgoCoreExact}
	var mu sync.Mutex
	var events []dsd.Answer
	res, cached, err := e.Stream(context.Background(), "bowtie", q, 0, func(a dsd.Answer, fromCache bool) {
		if fromCache {
			t.Error("live stream event flagged cached")
		}
		mu.Lock()
		events = append(events, a)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first stream reported cached")
	}
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Fatalf("last event not final: %+v", last)
	}
	if last.Density.Cmp(res.Density) != 0 {
		t.Fatalf("final event density %v != result %v", last.Density, res.Density)
	}
	// Monotonicity across the delivered sequence.
	for i := 1; i < len(events); i++ {
		if events[i].Density.Less(events[i-1].Density) {
			t.Fatalf("event %d lower end fell: %v -> %v", i, events[i-1].Density, events[i].Density)
		}
		if events[i].Bound > events[i-1].Bound {
			t.Fatalf("event %d upper end rose: %v -> %v", i, events[i-1].Bound, events[i].Bound)
		}
	}
	if e.cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after stream, want 1 (the terminal result)", e.cache.Len())
	}
	sres, scached, err := e.Solve(context.Background(), "bowtie", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !scached {
		t.Fatal("Solve after stream not served from cache")
	}
	assertSameResult(t, sres, res)
}

// TestEngineStreamSharesSingleFlight: a stream and a plain solve for the
// same key, launched together, compute once; every caller gets the same
// answer and every stream still ends with a final event.
func TestEngineStreamSharesSingleFlight(t *testing.T) {
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	e := newTestEngine(t, Config{Workers: 4, ComputeHook: func() {
		once.Do(entered.Done)
		<-release
	}})
	q := dsd.Query{Algo: dsd.AlgoCoreExact}

	const streams, solves = 3, 3
	results := make([]*dsd.Result, streams+solves)
	finals := make([]atomic.Int64, streams)
	errs := make([]error, streams+solves)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = e.Stream(context.Background(), "bowtie", q, 0, func(a dsd.Answer, _ bool) {
				if a.Final {
					finals[i].Add(1)
				}
			})
		}(i)
	}
	for i := 0; i < solves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[streams+i], _, errs[streams+i] = e.Solve(context.Background(), "bowtie", q, 0)
		}(i)
	}
	entered.Wait()
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := e.Stats().Computes; got != 1 {
		t.Fatalf("computes = %d, want 1 (stream and solve must share single flight)", got)
	}
	for i := 1; i < len(results); i++ {
		assertSameResult(t, results[i], results[0])
	}
	for i := range finals {
		if n := finals[i].Load(); n != 1 {
			t.Fatalf("stream %d saw %d final events, want exactly 1", i, n)
		}
	}
}

// TestEngineStreamCacheHit: a stream over an already-cached key delivers
// exactly one synthesized final event, flagged cached.
func TestEngineStreamCacheHit(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	q := dsd.Query{Algo: dsd.AlgoCoreExact}
	want, _, err := e.Solve(context.Background(), "bowtie", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	var events []dsd.Answer
	var flags []bool
	res, cached, err := e.Stream(context.Background(), "bowtie", q, 0, func(a dsd.Answer, fromCache bool) {
		events = append(events, a)
		flags = append(flags, fromCache)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("stream over a warm cache not reported cached")
	}
	if len(events) != 1 || !events[0].Final || !flags[0] {
		t.Fatalf("cached stream events = %d (final=%v cached=%v), want one cached final",
			len(events), len(events) > 0 && events[0].Final, len(flags) > 0 && flags[0])
	}
	assertSameResult(t, res, want)
	if events[0].Density.Cmp(want.Density) != 0 {
		t.Fatalf("cached final density %v != %v", events[0].Density, want.Density)
	}
	if events[0].Bound != want.Density.Float() {
		t.Fatalf("cached final bound %v != exact density %v", events[0].Bound, want.Density.Float())
	}
}

// TestEngineStreamDegradedNotCached: a degraded stream final (deadline
// hit) must not be served from the exact cache — the next identical
// query recomputes.
func TestEngineStreamDegradedNotCached(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	q := dsd.Query{Algo: dsd.AlgoCoreExact, Deadline: time.Nanosecond}
	var last dsd.Answer
	res, _, err := e.Stream(context.Background(), "bowtie", q, 0, func(a dsd.Answer, _ bool) { last = a })
	// A 1ns deadline ends in one of two certified-safe ways: an error
	// (nothing certified before the budget fired) or a Degraded final.
	// Either way the exact cache must stay empty and the next identical
	// query must recompute.
	switch {
	case err == nil && res.Degraded:
		if !last.Final || !last.Degraded {
			t.Fatalf("terminal event of a degraded stream = %+v, want final+degraded", last)
		}
	case err == nil:
		t.Skip("1ns deadline still finished exactly; nothing to assert")
	}
	if e.cache.Len() != 0 {
		t.Fatalf("deadline-hit stream result was cached (%d entries)", e.cache.Len())
	}
	if _, cached, err := e.Stream(context.Background(), "bowtie", q, 0, func(dsd.Answer, bool) {}); err == nil && cached {
		t.Fatal("second stream after a degraded final was served from cache")
	}
	if got := e.Stats().Computes; got != 2 {
		t.Fatalf("computes = %d, want 2 (degraded finals must not short-circuit)", got)
	}
}

// TestRetryAfterClamped: the drain-rate Retry-After stays inside
// [ShedRetryAfter, MaxShedRetryAfter] whatever the estimator holds.
func TestRetryAfterClamped(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 4})
	// No samples yet: the floor.
	if got := e.RetryAfter(); got != ShedRetryAfter {
		t.Fatalf("RetryAfter with no samples = %v, want %v", got, ShedRetryAfter)
	}
	// A huge observed gap with a queued backlog clamps to the cap.
	base := time.Now()
	e.drain.observe(base)
	e.drain.observe(base.Add(10 * time.Minute))
	e.admit <- struct{}{}
	if got := e.RetryAfter(); got != MaxShedRetryAfter {
		t.Fatalf("RetryAfter with a 10m gap = %v, want cap %v", got, MaxShedRetryAfter)
	}
	// A tiny gap clamps to the floor.
	e.drain.observe(base.Add(10*time.Minute + time.Microsecond))
	e.drain.observe(base.Add(10*time.Minute + 2*time.Microsecond))
	e.drain.observe(base.Add(10*time.Minute + 3*time.Microsecond))
	e.drain.observe(base.Add(10*time.Minute + 4*time.Microsecond))
	e.drain.observe(base.Add(10*time.Minute + 5*time.Microsecond))
	e.drain.observe(base.Add(10*time.Minute + 6*time.Microsecond))
	e.drain.observe(base.Add(10*time.Minute + 7*time.Microsecond))
	<-e.admit
	if got := e.RetryAfter(); got != ShedRetryAfter {
		t.Fatalf("RetryAfter with an empty queue = %v, want floor %v", got, ShedRetryAfter)
	}
	if s := e.Stats(); s.RetryAfterSeconds != e.RetryAfter().Seconds() {
		t.Fatalf("Stats().RetryAfterSeconds = %v, want %v", s.RetryAfterSeconds, e.RetryAfter().Seconds())
	}
}

// TestHTTPStreamSSE drives POST /v1/stream over a real loopback server
// through the client's SSE parser: the final event matches a plain
// /v2/query answer, a re-run is served as one cached final, and stream
// counters surface in /v1/stats.
func TestHTTPStreamSSE(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register("bowtie", bowtie()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, nil)

	req := wire.QueryV2Request{Graph: "bowtie", Query: wire.Query{Pattern: "triangle", Algo: "core-exact"}}
	var events []wire.StreamEvent
	final, err := c.StreamQuery(context.Background(), req, func(ev wire.StreamEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if !final.Final || final.Cached {
		t.Fatalf("first stream final = %+v, want live final", final)
	}
	if len(events) == 0 || !events[len(events)-1].Final {
		t.Fatalf("stream delivered %d events; last must be the final", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Density < events[i-1].Density-1e-12 {
			t.Fatalf("wire event %d density fell: %v -> %v", i, events[i-1].Density, events[i].Density)
		}
		prev, cur := math.Inf(1), math.Inf(1)
		if events[i-1].Upper != nil {
			prev = *events[i-1].Upper
		}
		if events[i].Upper != nil {
			cur = *events[i].Upper
		}
		if cur > prev {
			t.Fatalf("wire event %d upper rose: %v -> %v", i, prev, cur)
		}
	}

	want, err := c.QueryV2(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Cached {
		t.Fatal("QueryV2 after a streamed computation not served from cache")
	}
	if final.DensityNum != want.Result.DensityNum || final.DensityDen != want.Result.DensityDen {
		t.Fatalf("streamed final %d/%d != solved %d/%d",
			final.DensityNum, final.DensityDen, want.Result.DensityNum, want.Result.DensityDen)
	}

	refinal, err := c.StreamQuery(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !refinal.Cached || !refinal.Final {
		t.Fatalf("re-streamed final = %+v, want cached final", refinal)
	}
	if refinal.DensityNum != final.DensityNum || refinal.DensityDen != final.DensityDen {
		t.Fatalf("cached final density %d/%d != live %d/%d",
			refinal.DensityNum, refinal.DensityDen, final.DensityNum, final.DensityDen)
	}

	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Streams != 2 {
		t.Fatalf("stats.Streams = %d, want 2", stats.Streams)
	}
	if stats.RetryAfterSeconds <= 0 {
		t.Fatalf("stats.RetryAfterSeconds = %v, want > 0", stats.RetryAfterSeconds)
	}
}

// TestHTTPStreamErrors: pre-stream failures keep their proper HTTP
// status instead of a dead 200.
func TestHTTPStreamErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register("bowtie", bowtie()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg, Config{Workers: 1}))
	defer ts.Close()
	c := client.New(ts.URL, nil)

	if _, err := c.StreamQuery(context.Background(), wire.QueryV2Request{
		Graph: "nope", Query: wire.Query{Algo: "core-exact"},
	}, nil); err == nil {
		t.Fatal("stream on an unknown graph succeeded")
	}
	// A non-core-exact algo cannot stream; the engine rejects it before
	// any event, so the client sees a status-mapped error.
	if _, err := c.StreamQuery(context.Background(), wire.QueryV2Request{
		Graph: "bowtie", Query: wire.Query{Algo: "peel"},
	}, nil); err == nil {
		t.Fatal("stream with algo=peel succeeded")
	}
}
