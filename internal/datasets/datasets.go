// Package datasets provides deterministic synthetic stand-ins for the 13
// datasets of the paper's evaluation (Table 2, Figure 18) plus the three
// additional datasets of Appendix E. Real graphs are unavailable offline,
// so each stand-in is a seeded Chung–Lu power-law graph matching the
// paper-reported vertex count, edge count and power-law exponent, with a
// planted near-clique sized like the paper's reported (kmax,Ψ)-core so
// that densest-subgraph structure (CDS ≈ large near-clique) is preserved.
// See DESIGN.md §3 for the substitution rationale.
//
// Large datasets are generated at a reduced scale by default (Div field):
// the shape claims of the paper are about relative algorithm behaviour,
// which is preserved; absolute sizes beyond ~10⁷ edges are not
// materializable in this environment.
package datasets

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Class buckets datasets the way the evaluation does.
type Class string

// Dataset classes: the five small graphs run exact algorithms, the five
// large ones approximation algorithms, the extra three appear in Appendix
// E, and the random three in Figures 13/14.
const (
	Small  Class = "small"
	Large  Class = "large"
	Extra  Class = "extra"
	Random Class = "random"
)

// Spec describes one dataset stand-in.
type Spec struct {
	Name  string
	Class Class
	// N, M, Alpha are the paper-reported statistics (Figure 18).
	N     int
	M     int
	Alpha float64
	// Plant is the planted near-clique size, taken from the paper's
	// (kmax,Ψ)-core size (capped for tractability on huge graphs).
	Plant int
	// Div is the default downscale divisor in this environment (1 = full
	// paper size).
	Div int
	// Seed fixes the generator stream.
	Seed int64
}

// registry lists every dataset in paper order.
var registry = []Spec{
	{Name: "Yeast", Class: Small, N: 1116, M: 2148, Alpha: 2.9769, Plant: 10, Div: 1, Seed: 101},
	{Name: "Netscience", Class: Small, N: 1589, M: 2742, Alpha: 2.4053, Plant: 20, Div: 1, Seed: 102},
	{Name: "As-733", Class: Small, N: 1486, M: 3172, Alpha: 2.7204, Plant: 30, Div: 1, Seed: 103},
	{Name: "Ca-HepTh", Class: Small, N: 9877, M: 25998, Alpha: 2.6472, Plant: 32, Div: 1, Seed: 104},
	{Name: "As-Caida", Class: Small, N: 26475, M: 106762, Alpha: 2.7898, Plant: 40, Div: 1, Seed: 105},

	{Name: "DBLP", Class: Large, N: 425957, M: 1049866, Alpha: 2.3457, Plant: 48, Div: 1, Seed: 201},
	{Name: "Cit-Patents", Class: Large, N: 3774768, M: 16518948, Alpha: 2.284, Plant: 48, Div: 8, Seed: 202},
	{Name: "Friendster", Class: Large, N: 20145325, M: 106570765, Alpha: 2.4466, Plant: 48, Div: 64, Seed: 203},
	{Name: "Enwiki-2017", Class: Large, N: 5409498, M: 122008994, Alpha: 2.4443, Plant: 48, Div: 64, Seed: 204},
	{Name: "UK-2002", Class: Large, N: 18520486, M: 298113762, Alpha: 2.4967, Plant: 48, Div: 128, Seed: 205},

	{Name: "Flickr", Class: Extra, N: 214698, M: 2096306, Alpha: 2.45, Plant: 40, Div: 2, Seed: 301},
	{Name: "Google", Class: Extra, N: 875713, M: 4322051, Alpha: 2.45, Plant: 40, Div: 4, Seed: 302},
	{Name: "Foursquare", Class: Extra, N: 2127093, M: 8640352, Alpha: 2.45, Plant: 40, Div: 8, Seed: 303},

	{Name: "SSCA", Class: Random, N: 100000, M: 3405676, Alpha: 7.2754, Plant: 0, Div: 1, Seed: 401},
	{Name: "ER", Class: Random, N: 100000, M: 4837534, Alpha: 63.6944, Plant: 0, Div: 1, Seed: 402},
	{Name: "R-MAT", Class: Random, N: 100000, M: 2571986, Alpha: 24.653, Plant: 0, Div: 1, Seed: 403},
}

// All returns every dataset spec in paper order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// ByClass returns the specs of one class in paper order.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// Get resolves a dataset by name.
func Get(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Load generates the stand-in at the spec's default scale.
func (s Spec) Load() *graph.Graph { return s.LoadDiv(s.Div) }

// LoadDiv generates the stand-in downscaled by div (1 = paper size). The
// generator stream is fixed by the spec's seed, so repeated loads are
// identical.
func (s Spec) LoadDiv(div int) *graph.Graph { return s.loadWith(div, true) }

// LoadPlain generates the stand-in with only the near-clique plant — no
// bipartite EDS block and no decoy. Pattern experiments use this variant:
// a complete bipartite block carries combinatorially explosive counts of
// cycle-bearing patterns (baskets, diamonds) that no algorithm in the
// paper is meant to materialize.
func (s Spec) LoadPlain(div int) *graph.Graph { return s.loadWith(div, false) }

func (s Spec) loadWith(div int, withEDSPlant bool) *graph.Graph {
	if div < 1 {
		div = 1
	}
	n, m := s.N/div, s.M/div
	if n < 16 {
		n = 16
	}
	if m < 16 {
		m = 16
	}
	switch s.Name {
	case "SSCA":
		// Random-sized cliques; max clique size 100 matches the paper's
		// reported edge volume at n = 100000. The max clique size shrinks
		// with the downscale so clique enumeration stays proportionate.
		mc := 100
		for d := div; d >= 4; d /= 4 {
			mc /= 2
		}
		if mc < 8 {
			mc = 8
		}
		return gen.SSCA(n, mc, s.Seed)
	case "ER":
		return gen.GNM(n, m, s.Seed)
	case "R-MAT":
		return gen.RMATDefault(n, m, s.Seed)
	}
	base := gen.ChungLu(n, m, s.Alpha, s.Seed)
	plant := s.Plant
	if plant > n/24 {
		plant = n / 24
	}
	if plant < 4 {
		return base
	}
	b := graph.NewBuilder(n)
	base.Edges(func(u, v int) { b.AddEdge(u, v) })

	// The stand-in plants three structures in a contiguous mid-range id
	// block, reproducing the paper's Figure 1 narrative (the EDS and the
	// clique-CDS are different subgraphs) and keeping the exact
	// algorithms' binary search non-trivial:
	//
	//  1. A graded near-clique of `plant` vertices (~93% edge fill): the
	//     CDS for every h ≥ 3, as in §8.1 ④ (CDS ≈ large near-clique).
	//  2. A complete bipartite block K_{a,10·plant} with a = plant/2: the
	//     EDS. Its right side has minimum degree a, *below* the decoy's,
	//     so greedy peeling destroys it early and PeelApp/ρ′ stay
	//     strictly below ρopt — the regime where CoreExact's binary
	//     search and network shrinking matter (Figure 9).
	//  3. A circulant "decoy" of 12·plant vertices with degree ≈ a+2:
	//     denser in min-degree than the bipartite block but sparser in
	//     edge density, which is what fools the greedy peel.
	cursor := n / 3
	take := func(k int) []int {
		ids := make([]int, k)
		for i := range ids {
			ids[i] = (cursor + i) % n
		}
		cursor += k
		return ids
	}

	// 1: near-clique.
	clq := take(plant)
	for i := range clq {
		for j := i + 1; j < len(clq); j++ {
			if (i*2654435761+j*40503)%100 < 93 {
				b.AddEdge(clq[i], clq[j])
			}
		}
	}
	if !withEDSPlant {
		return b.Build()
	}
	// 2: bipartite K_{a,T}.
	a := plant / 2
	left := take(a)
	right := take(10 * plant)
	for _, l := range left {
		for _, r := range right {
			b.AddEdge(l, r)
		}
	}
	// 3: circulant decoy with degree 2·⌈(a+2)/2⌉ ≥ a+2.
	dec := take(12 * plant)
	span := (a + 3) / 2
	for i := range dec {
		for o := 1; o <= span; o++ {
			b.AddEdge(dec[i], dec[(i+o)%len(dec)])
		}
	}
	return b.Build()
}
