// Package rational provides exact density arithmetic. A graph density is a
// ratio µ/n of two non-negative integers; comparing densities with floating
// point risks misordering subgraphs whose densities differ by as little as
// 1/(n(n−1)) (Lemma 12 of the paper), so all density comparisons in this
// repository go through R.Cmp, which cross-multiplies in int64 and falls
// back to math/big on potential overflow.
package rational

import (
	"fmt"
	"math"
	"math/big"
)

// R is the non-negative rational Num/Den. Den == 0 with Num == 0 denotes
// the density of an empty subgraph and compares less than every proper
// density.
type R struct {
	Num int64
	Den int64
}

// Zero is the density of the empty subgraph.
var Zero = R{0, 0}

// New returns the rational num/den. den must be non-negative.
func New(num, den int64) R { return R{Num: num, Den: den} }

// Decode builds the exact density num/den from wire-carried integers,
// mapping anything malformed — a non-positive denominator (the JSON zero
// value) or a negative numerator — to the empty density, which compares
// below every proper density and therefore can never inflate a bound.
func Decode(num, den int64) R {
	if den <= 0 || num < 0 {
		return Zero
	}
	return New(num, den)
}

// IsZero reports whether r denotes an empty/zero density.
func (r R) IsZero() bool { return r.Num == 0 }

// Float returns the float64 value of r (0 for the empty density).
func (r R) Float() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Ceil returns ⌈r⌉ (0 for the empty density).
func (r R) Ceil() int64 {
	if r.Den == 0 {
		return 0
	}
	return (r.Num + r.Den - 1) / r.Den
}

// String renders r as a decimal with enough digits for test output.
func (r R) String() string {
	if r.Den == 0 {
		return "0"
	}
	return fmt.Sprintf("%d/%d=%.4f", r.Num, r.Den, r.Float())
}

// mulOverflows reports whether a*b overflows int64. Both a and b must be
// non-negative.
func mulOverflows(a, b int64) bool {
	if a == 0 || b == 0 {
		return false
	}
	return a > math.MaxInt64/b
}

// Cmp compares r and s exactly, returning -1, 0 or +1.
func (r R) Cmp(s R) int {
	// Empty densities compare below everything except other empties.
	switch {
	case r.Den == 0 && s.Den == 0:
		return cmpInt64(r.Num, s.Num) // both should be 0 in practice
	case r.Den == 0:
		if s.Num == 0 {
			return cmpInt64(r.Num, 0)
		}
		return -1
	case s.Den == 0:
		if r.Num == 0 {
			return cmpInt64(0, s.Num)
		}
		return 1
	}
	if mulOverflows(r.Num, s.Den) || mulOverflows(s.Num, r.Den) {
		a := new(big.Int).Mul(big.NewInt(r.Num), big.NewInt(s.Den))
		b := new(big.Int).Mul(big.NewInt(s.Num), big.NewInt(r.Den))
		return a.Cmp(b)
	}
	return cmpInt64(r.Num*s.Den, s.Num*r.Den)
}

// CmpFloat compares r with the exact real value of f, returning -1, 0 or
// +1. A float64 is a dyadic rational, so the comparison is performed
// exactly via math/big; no rounding of r to float64 is involved. The
// parallel CoreExact engine relies on this to abort a component search
// only when the shared lower bound provably dominates the component's
// remaining range (comparing r.Float() ≥ f could err by an ulp and
// discard a strictly better optimum). NaN compares as +Inf would: above
// every finite density.
func (r R) CmpFloat(f float64) int {
	if math.IsNaN(f) || math.IsInf(f, 1) {
		return -1
	}
	if math.IsInf(f, -1) {
		return 1
	}
	if r.Den == 0 {
		// Empty density: below every positive value, equal to 0.
		switch {
		case f > 0:
			return -1
		case f < 0:
			return 1
		default:
			return 0
		}
	}
	rf := new(big.Rat).SetFrac64(r.Num, r.Den)
	ff := new(big.Rat).SetFloat64(f)
	return rf.Cmp(ff)
}

// Less reports r < s exactly.
func (r R) Less(s R) bool { return r.Cmp(s) < 0 }

// Greater reports r > s exactly.
func (r R) Greater(s R) bool { return r.Cmp(s) > 0 }

// Max returns the larger of r and s.
func Max(r, s R) R {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
