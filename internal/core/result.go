package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/motif"
	"repro/internal/obs"
	"repro/internal/rational"
)

// Result is a densest-subgraph answer: the vertex set D, its instance
// count µ(D,Ψ) and its exact density ρ(D,Ψ) = µ/|V_D|.
type Result struct {
	// Vertices is D's vertex set in the input graph's ids, sorted.
	Vertices []int32
	// Mu is µ(D,Ψ), the number of Ψ-instances inside D.
	Mu int64
	// Density is the exact density µ/|V_D|.
	Density rational.R
	// Degraded reports that the run stopped before certifying exactness —
	// a deadline or accuracy budget (Options.Deadline / Options.Gap) ended
	// the search early — and the answer is the best certified
	// approximation held at that moment. Vertices is still a real subgraph
	// and Density its exact density; only optimality is open, and Bound
	// says by how much. Exact runs leave Degraded false and Bound zero.
	Degraded bool
	// Bound is the certificate of a degraded answer: the optimum density
	// ρopt satisfies Lower ≤ ρopt ≤ Upper, with Lower the returned
	// witness's exact density and Upper the maximum surviving
	// per-component upper bound (core-number, Greed++ max-load/T, and
	// infeasible-probe certificates, whichever is tightest per component).
	Bound Bound
	// Stats carries per-run instrumentation.
	Stats Stats
}

// Bound is a certified density interval: the true optimum lies in
// [Lower, Upper]. Lower is exact (it is a real subgraph's density);
// Upper is a float but rounded conservatively, never below the true
// optimum.
type Bound struct {
	Lower rational.R
	Upper float64
}

// Stats instruments a run for the paper's efficiency figures.
type Stats struct {
	// Decompose is the time spent in (k,Ψ)-core decomposition (Table 3).
	Decompose time.Duration
	// Total is the wall-clock time of the whole run.
	Total time.Duration
	// FlowNodes records the node count of every flow network built, in
	// order (Figure 9: networks shrink across binary-search iterations).
	FlowNodes []int
	// Iterations counts binary-search iterations, i.e. flow networks built
	// and min-cut computations performed.
	Iterations int
	// PreSolveIters counts Greed++ load-balancing iterations run by the
	// iterative pre-solver across all component searches (0 when the
	// pre-solver is disabled).
	PreSolveIters int
	// PreSolveSkips counts component searches the pre-solver finished
	// without building a single flow network: the iterative bounds either
	// proved the component cannot beat the shared lower bound or closed
	// the binary-search gap outright.
	PreSolveSkips int
	// ReusedDecomposition reports that the run was handed a precomputed
	// (k,Ψ)-core (or nucleus, or classical-core) decomposition via a
	// *WithState entrypoint instead of computing its own — the hot path a
	// warm dsd.Solver serves; Decompose is zero on such runs.
	ReusedDecomposition bool
	// ReusedDegrees reports that the run was handed the whole-graph
	// Ψ-degree vector via a *WithState entrypoint instead of enumerating
	// instances itself.
	ReusedDegrees bool
	// BoundedCores reports that the run located on upper-bound core
	// numbers carried across a mutation (Options.DecUpperBound) instead
	// of an exact peel of its own graph — the hot path of a mutated
	// dsd.Solver, which skips both the Ψ-instance counting and the peel.
	BoundedCores bool
	// Sharded-execution counters, set by the internal/shard coordinator
	// (all zero on in-process runs). ShardComponents counts the planned
	// component searches; ShardRemote those answered by a remote shard
	// worker; ShardFallbacks remote failures re-executed locally;
	// ShardHedges straggler hedges launched (a duplicate local search
	// racing a slow shard).
	ShardComponents int
	ShardRemote     int
	ShardFallbacks  int
	ShardHedges     int
	// FlowTime is the wall time summed over every flow-network build plus
	// min-cut solve; PreSolveTime over every Greed++ pre-solve run,
	// including post-shrink refreshes. On parallel runs the phases overlap
	// across workers, so the sums can exceed Total — they are CPU-style
	// attribution ("where the work went"), the paper's flow-vs-peel split.
	FlowTime     time.Duration
	PreSolveTime time.Duration
	// AllocBytes/Allocs are the heap allocation attributed to the run:
	// the allocation-counter delta over the root span's window. Non-zero
	// only on traced runs — the tracer's memory sampling is what
	// measures them — and process-wide, so concurrent queries inflate
	// each other's deltas (the per-phase trace says where the bytes
	// went).
	AllocBytes int64
	Allocs     int64
	// Trace is the phase-level span tree of the run, non-nil only when
	// the caller's context carried an obs.Tracer (see obs.WithSpan).
	Trace *obs.Trace
}

// evaluate builds the Result for the subgraph of g induced by vs.
func evaluate(g *graph.Graph, o motif.Oracle, vs []int32) *Result {
	if len(vs) == 0 {
		return &Result{Density: rational.Zero}
	}
	sub := g.Induced(vs)
	mu, _ := o.CountAndDegrees(sub.Graph)
	return &Result{
		Vertices: sub.Orig,
		Mu:       mu,
		Density:  rational.New(mu, int64(len(sub.Orig))),
	}
}

// witnessValid reports whether every id in vs is a vertex of g — the
// guard that lets PlanCoreExact evaluate a caller-supplied seed witness
// (possibly from an older graph version) without panicking on out-of-
// range ids. Duplicate ids are harmless: Induced de-duplicates.
func witnessValid(g *graph.Graph, vs []int32) bool {
	n := int32(g.N())
	for _, v := range vs {
		if v < 0 || v >= n {
			return false
		}
	}
	return true
}

// densityOf computes the exact Ψ-density of the subgraph induced by vs.
func densityOf(g *graph.Graph, o motif.Oracle, vs []int32) (rational.R, int64) {
	if len(vs) == 0 {
		return rational.Zero, 0
	}
	sub := g.Induced(vs)
	mu, _ := o.CountAndDegrees(sub.Graph)
	return rational.New(mu, int64(len(sub.Orig))), mu
}
