// Package testutil holds brute-force reference implementations used by
// tests across the repository to validate the optimized algorithms. They
// are deliberately simple and slow: correctness oracles, not production
// code.
package testutil

import (
	"fmt"
	"sort"

	"repro/internal/graph"

	"repro/internal/rational"
)

// BruteForceCliqueCount counts h-cliques by testing every h-subset.
func BruteForceCliqueCount(g *graph.Graph, h int) int64 {
	var count int64
	n := g.N()
	subset := make([]int, h)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == h {
			count++
			return
		}
		for v := start; v < n; v++ {
			ok := true
			for i := 0; i < depth; i++ {
				if !g.HasEdge(subset[i], v) {
					ok = false
					break
				}
			}
			if ok {
				subset[depth] = v
				rec(v+1, depth+1)
			}
		}
	}
	rec(0, 0)
	return count
}

// BruteForceCliqueDegrees counts, for every vertex, the h-cliques that
// contain it, by full subset enumeration.
func BruteForceCliqueDegrees(g *graph.Graph, h int) []int64 {
	deg := make([]int64, g.N())
	n := g.N()
	subset := make([]int, h)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == h {
			for _, v := range subset {
				deg[v]++
			}
			return
		}
		for v := start; v < n; v++ {
			ok := true
			for i := 0; i < depth; i++ {
				if !g.HasEdge(subset[i], v) {
					ok = false
					break
				}
			}
			if ok {
				subset[depth] = v
				rec(v+1, depth+1)
			}
		}
	}
	rec(0, 0)
	return deg
}

// BruteForcePatternInstances enumerates the distinct edge-set instances of
// a pattern (k vertices, the given edge list) in g by trying every
// injection into every vertex subset, deduplicating by edge set
// (Definition 8 verbatim). It returns the distinct instance count and
// per-vertex degrees.
func BruteForcePatternInstances(g *graph.Graph, k int, pedges [][2]int) (int64, []int64) {
	n := g.N()
	deg := make([]int64, n)
	seen := make(map[string]bool)
	phi := make([]int, k)
	used := make([]bool, n)
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			// Build canonical edge-set key.
			var edges [][2]int
			for _, e := range pedges {
				u, v := phi[e[0]], phi[e[1]]
				if u > v {
					u, v = v, u
				}
				edges = append(edges, [2]int{u, v})
			}
			sort.Slice(edges, func(a, b int) bool {
				if edges[a][0] != edges[b][0] {
					return edges[a][0] < edges[b][0]
				}
				return edges[a][1] < edges[b][1]
			})
			key := ""
			for _, e := range edges {
				key += fmt.Sprintf("%d,%d;", e[0], e[1])
			}
			if seen[key] {
				return
			}
			seen[key] = true
			count++
			for _, v := range phi {
				deg[v]++
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			ok := true
			for _, e := range pedges {
				a, b := e[0], e[1]
				if a == i && b < i && !g.HasEdge(v, phi[b]) {
					ok = false
					break
				}
				if b == i && a < i && !g.HasEdge(v, phi[a]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			phi[i] = v
			used[v] = true
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return count, deg
}

// BruteForceDensest finds the exact densest subgraph by enumerating every
// non-empty vertex subset, using count to measure µ of each induced
// subgraph. Usable for n ≤ ~16.
func BruteForceDensest(g *graph.Graph, count func(sub *graph.Graph) int64) (rational.R, []int32) {
	n := g.N()
	best := rational.Zero
	var bestSet []int32
	var vs []int32
	for mask := 1; mask < (1 << n); mask++ {
		vs = vs[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				vs = append(vs, int32(v))
			}
		}
		sub := g.Induced(vs)
		d := rational.New(count(sub.Graph), int64(len(vs)))
		if d.Greater(best) {
			best = d
			bestSet = append([]int32(nil), vs...)
		}
	}
	return best, bestSet
}

// BruteForceCoreNumbers computes (k,Ψ)-core numbers from the definition:
// for k = 0,1,2,…, iteratively delete vertices with Ψ-degree < k; the
// survivors form the (k,Ψ)-core and every vertex's core number is the
// largest k whose core contains it. degrees measures per-vertex Ψ-degrees
// of an induced subgraph.
func BruteForceCoreNumbers(g *graph.Graph, degrees func(sub *graph.Graph) []int64) []int64 {
	n := g.N()
	core := make([]int64, n)
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	for k := int64(1); ; k++ {
		// Iterate to fixpoint: remove alive vertices with degree < k in
		// the alive-induced subgraph.
		cur := append([]bool(nil), alive...)
		for {
			var vs []int32
			for v := 0; v < n; v++ {
				if cur[v] {
					vs = append(vs, int32(v))
				}
			}
			if len(vs) == 0 {
				return core
			}
			sub := g.Induced(vs)
			deg := degrees(sub.Graph)
			removed := false
			for lv, d := range deg {
				if d < k {
					cur[sub.Orig[lv]] = false
					removed = true
				}
			}
			if !removed {
				break
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if cur[v] {
				core[v] = k
				any = true
			}
		}
		alive = cur
		if !any {
			return core
		}
	}
}
