// Command dsdd serves densest-subgraph queries over HTTP. It keeps
// registered graphs and their Ψ-core work warm across queries, dispatches
// work through a bounded worker pool, and deduplicates concurrent
// identical queries through a single-flight result cache.
//
// Usage:
//
//	dsdd [-addr :8080] [-workers 8] [-algo-workers 2] [-algo-iterative 16]
//	     [-timeout 30s] [-graph name=edges.txt ...] [-allow-paths]
//
// API: POST /v2/query (any dsd.Query), POST /v1/query (legacy triple),
// GET/POST /v1/graphs, GET /v1/stats, GET /healthz.
//
//	curl -s localhost:8080/v2/query -d '{"graph":"web","query":{"pattern":"triangle","algo":"core-exact"}}'
//	curl -s localhost:8080/v1/query -d '{"graph":"web","pattern":"triangle","algo":"core-exact"}'
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/qflag"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsdd: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// graphSpecs collects repeated -graph name=path flags.
type graphSpecs []string

func (g *graphSpecs) String() string { return strings.Join(*g, ",") }

func (g *graphSpecs) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*g = append(*g, v)
	return nil
}

func run(args []string, out io.Writer) error {
	srv, addr, err := newServer(args)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dsdd: listening on http://%s (%d graphs, %d workers)\n",
		ln.Addr(), srv.Engine().Stats().Graphs, srv.Engine().Workers())
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	return hs.Serve(ln)
}

// newServer parses args, preloads graphs, and builds the HTTP server.
// The per-query default knobs come through the shared Query builder
// (internal/qflag), so -algo-workers/-algo-iterative mean exactly what
// cmd/dsd's -workers/-iterative mean.
func newServer(args []string) (*service.Server, string, error) {
	fs := flag.NewFlagSet("dsdd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "max concurrent computations (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-query timeout (0 = none)")
		allowPaths = fs.Bool("allow-paths", false, "allow registering graphs from server file paths via the API")
		graphs     graphSpecs
	)
	b := qflag.New()
	b.Workers(fs, "algo-workers", "default parallel workers inside each core-exact query (0 = GOMAXPROCS/workers, 1 = serial, -1 = GOMAXPROCS)")
	b.Iterative(fs, "algo-iterative", "default Greed++ pre-solve iterations inside each core-exact query (0 = engine default, -1 = off)")
	fs.Var(&graphs, "graph", "preload a graph as name=edge-list-path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	q, err := b.Query()
	if err != nil {
		return nil, "", err
	}
	reg := service.NewRegistry()
	for _, spec := range graphs {
		name, path, _ := strings.Cut(spec, "=")
		if _, err := reg.RegisterFile(name, path); err != nil {
			return nil, "", err
		}
	}
	srv := service.NewServer(reg, service.Config{
		Workers:       *workers,
		AlgoWorkers:   q.Workers,
		AlgoIterative: q.Iterative,
		Timeout:       *timeout,
	})
	if *allowPaths {
		srv.AllowPathRegistration()
	}
	return srv, *addr, nil
}
