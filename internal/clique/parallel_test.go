package clique

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.GNM(60, 300, seed)
		l := NewLister(g)
		for h := 2; h <= 5; h++ {
			for _, workers := range []int{1, 2, 4, 7} {
				if l.CountParallel(h, workers) != l.Count(h) {
					t.Logf("seed %d h=%d workers=%d: count mismatch", seed, h, workers)
					return false
				}
				pd := l.DegreesParallel(h, workers)
				sd := l.Degrees(h)
				for v := range sd {
					if pd[v] != sd[v] {
						t.Logf("seed %d h=%d workers=%d: deg[%d] %d != %d",
							seed, h, workers, v, pd[v], sd[v])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDefaultsAndEdgeCases(t *testing.T) {
	g := gen.GNM(10, 20, 1)
	l := NewLister(g)
	if l.CountParallel(3, 0) != l.Count(3) { // workers=0 → GOMAXPROCS
		t.Fatal("default worker count wrong")
	}
	if l.CountParallel(3, 100) != l.Count(3) { // workers > n clamps
		t.Fatal("oversubscribed worker count wrong")
	}
	empty := NewLister(gen.GNM(0, 0, 1))
	if empty.CountParallel(3, 4) != 0 {
		t.Fatal("empty graph")
	}
	if got := len(empty.DegreesParallel(3, 4)); got != 0 {
		t.Fatal("empty degrees")
	}
}

func TestForEachStopEarlyTermination(t *testing.T) {
	g := gen.GNM(30, 200, 2)
	l := NewLister(g)
	var seen int
	done := l.ForEachStop(3, func([]int32) bool {
		seen++
		return seen < 5
	})
	if done {
		t.Fatal("ForEachStop reported completion despite early stop")
	}
	if seen != 5 {
		t.Fatalf("visited %d cliques after stop at 5", seen)
	}
	// Full run reports done.
	if !l.ForEachStop(3, func([]int32) bool { return true }) {
		t.Fatal("complete run reported as stopped")
	}
}
