package motif

import (
	"repro/internal/clique"
	"repro/internal/graph"
)

// CliqueEdgeDelta counts the h-cliques of g that contain the undirected
// edge {u, v}, which must be present in g. It returns the count together
// with the per-vertex incidence: delta[w] is how many of those cliques
// contain w (u and v appear with the full count). This is the exact
// amount by which inserting or deleting the edge changes µ(G, Ψ) and the
// Ψ-degree vector for Ψ = h-clique, computed in O(touched instances):
// every h-clique through {u, v} is {u, v} plus an (h−2)-clique in the
// common neighborhood of u and v, so the enumeration never leaves that
// (typically tiny) induced subgraph.
func CliqueEdgeDelta(g *graph.Graph, u, v, h int) (int64, map[int32]int64) {
	delta := make(map[int32]int64)
	switch {
	case h < 2:
		return 0, delta
	case h == 2:
		delta[int32(u)] = 1
		delta[int32(v)] = 1
		return 1, delta
	}
	common := graph.IntersectSorted(g.Neighbors(u), g.Neighbors(v), nil)
	if len(common) < h-2 {
		return 0, delta
	}
	var total int64
	if h == 3 {
		total = int64(len(common))
		for _, w := range common {
			delta[w] = 1
		}
	} else {
		sub := g.Induced(common)
		clique.NewLister(sub.Graph).ForEach(h-2, func(c []int32) {
			total++
			for _, lv := range c {
				delta[sub.Orig[lv]]++
			}
		})
	}
	if total > 0 {
		delta[int32(u)] = total
		delta[int32(v)] = total
	}
	return total, delta
}
