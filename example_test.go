package dsd_test

import (
	"context"
	"fmt"

	dsd "repro"
)

// A Solver answers any number of queries on one graph; repeated queries
// with the same motif reuse the memoized Ψ-state (the second triangle
// query below skips the core decomposition entirely).
func ExampleSolver() {
	g := dsd.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
	s := dsd.NewSolver(g)
	ctx := context.Background()

	cold, err := s.Solve(ctx, dsd.Query{H: 3}) // triangle-densest, CoreExact
	if err != nil {
		panic(err)
	}
	warm, err := s.Solve(ctx, dsd.Query{H: 3, Algo: dsd.AlgoPeel}) // same Ψ, different algorithm
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact=%.2f peel=%.2f reused=%v\n",
		cold.Density.Float(), warm.Density.Float(), warm.Stats.ReusedDecomposition)
	// Output: exact=0.40 peel=0.40 reused=true
}

// A Query expresses every supported problem in one value; the algorithm
// is inferred from the variant fields when left empty.
func ExampleQuery() {
	g := dsd.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	s := dsd.NewSolver(g)
	ctx := context.Background()

	// Anchored: densest subgraph containing vertex 4 (infers AlgoAnchored).
	anchored, err := s.Solve(ctx, dsd.Query{Anchors: []int32{4}})
	if err != nil {
		panic(err)
	}
	// Size-constrained: densest residual with ≥ 4 vertices.
	atLeast, err := s.Solve(ctx, dsd.Query{AtLeast: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("anchored=%.2f at-least-4=%.2f\n", anchored.Density.Float(), atLeast.Density.Float())
	// Output: anchored=1.00 at-least-4=1.00
}

// The bowtie graph: two triangles sharing vertex 2. Its triangle-densest
// subgraph is the whole bowtie (2 triangles over 5 vertices).
func ExampleCliqueDensest() {
	g := dsd.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
	res, err := dsd.CliqueDensest(g, 3, dsd.AlgoCoreExact)
	if err != nil {
		panic(err)
	}
	fmt.Printf("density=%.2f vertices=%v\n", res.Density.Float(), res.Vertices)
	// Output: density=0.40 vertices=[0 1 2 3 4]
}

func ExamplePatternDensest() {
	g := dsd.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
	p, err := dsd.PatternByName("2-star")
	if err != nil {
		panic(err)
	}
	res, err := dsd.PatternDensest(g, p, dsd.AlgoCoreExact)
	if err != nil {
		panic(err)
	}
	fmt.Printf("2-star density=%.2f\n", res.Density.Float())
	// Output: 2-star density=2.00
}

func ExampleCliqueCoreNumbers() {
	g := dsd.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
	cores, kmax := dsd.CliqueCoreNumbers(g, 3)
	fmt.Println(cores, kmax)
	// Output: [1 1 1 1 1] 1
}

func ExampleQueryDensest() {
	// Densest subgraph forced to contain vertex 4 (on the sparse side).
	g := dsd.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	res, err := dsd.QueryDensest(g, []int32{4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("density=%.2f contains 4: %v\n", res.Density.Float(), contains(res.Vertices, 4))
	// Output: density=1.00 contains 4: true
}

func contains(vs []int32, want int32) bool {
	for _, v := range vs {
		if v == want {
			return true
		}
	}
	return false
}
