package dsd

// AwaitOrphans exposes the orphaned-computation counter to the package
// tests: it advances exactly when a cancelled non-preemptible run
// finishes on its background goroutine and is dropped (see Solve's
// cancellation contract).
func AwaitOrphans() int64 { return awaitOrphans.Load() }
