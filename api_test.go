package dsd_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// updateAPIBaseline rewrites the golden API surface instead of checking
// it: `make api` (go test -run TestAPIStability . -args -update).
var updateAPIBaseline = flag.Bool("update", false, "rewrite api/dsd.txt from the current exported surface")

const apiBaselinePath = "api/dsd.txt"

// TestAPIStability is the API gate of the Query/Solver redesign: the
// exported surface of package dsd — every legacy wrapper included — is
// snapshotted in api/dsd.txt, and a PR that changes a signature, drops a
// symbol, or adds one must refresh the baseline explicitly (`make api`)
// so the change is visible in review instead of silently breaking the
// v1 wrappers.
func TestAPIStability(t *testing.T) {
	got := apiSurface(t)
	if *updateAPIBaseline {
		if err := os.MkdirAll(filepath.Dir(apiBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiBaselinePath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", apiBaselinePath)
		return
	}
	want, err := os.ReadFile(apiBaselinePath)
	if err != nil {
		t.Fatalf("missing API baseline (run `make api` to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first differing line so the drift is findable.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("exported API surface drifted from %s at line %d:\n  baseline: %q\n  current:  %q\n"+
				"If the change is intentional, refresh the baseline with `make api`.",
				apiBaselinePath, i+1, w, g)
		}
	}
	t.Fatalf("exported API surface drifted from %s (lengths %d vs %d); refresh with `make api`",
		apiBaselinePath, len(want), len(got))
}

// apiSurface renders the exported declarations of package dsd (the
// package in the current directory) as a sorted, comment-free listing:
// funcs and methods without bodies, types with unexported struct fields
// elided, exported consts and vars. Sorting makes the baseline
// insensitive to moving declarations between files.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dsd"]
	if !ok {
		t.Fatalf("package dsd not found in .; got %v", pkgs)
	}

	var decls []string
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// Collapse the blank lines left by stripped doc comments so that
		// commenting a field cannot churn the baseline.
		out := buf.String()
		for strings.Contains(out, "\n\n") {
			out = strings.ReplaceAll(out, "\n\n", "\n")
		}
		return out
	}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				fn := *d
				fn.Doc, fn.Body = nil, nil
				decls = append(decls, render(&fn))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						cp := *sp
						cp.Doc, cp.Comment = nil, nil
						stripUnexportedFields(&cp)
						kw := "type"
						decls = append(decls, kw+" "+render(&cp))
					case *ast.ValueSpec:
						if !anyExported(sp.Names) {
							continue
						}
						cp := *sp
						cp.Doc, cp.Comment = nil, nil
						kw := "const"
						if d.Tok == token.VAR {
							kw = "var"
						}
						decls = append(decls, kw+" "+render(&cp))
					}
				}
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n"
}

// exportedRecv reports whether a method's receiver type is exported
// (free functions trivially qualify).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// stripUnexportedFields elides unexported struct fields (and all field
// docs) so internals never leak into — or churn — the baseline.
func stripUnexportedFields(sp *ast.TypeSpec) {
	st, ok := sp.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	cp := *st
	fields := &ast.FieldList{}
	for _, f := range st.Fields.List {
		if !anyExported(f.Names) {
			continue
		}
		fc := *f
		fc.Doc, fc.Comment = nil, nil
		fields.List = append(fields.List, &fc)
	}
	cp.Fields = fields
	sp.Type = &cp
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}
