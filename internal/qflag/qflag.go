// Package qflag is the shared command-line Query builder: one place
// where flag values become a dsd.Query, so cmd/dsd, cmd/dsdd, and
// cmd/dsdbench agree on flag semantics (motif names, algorithm names,
// "-1 = GOMAXPROCS" workers, "negative = off" iterative budgets) instead
// of re-implementing them per binary.
//
// Each CLI registers only the flags it exposes, under its own names:
//
//	b := qflag.New()
//	b.Motif(fs, "motif", "edge")
//	b.Algo(fs, "algo", "")
//	b.Workers(fs, "algo-workers")   // dsdd's name for the same knob
//	...
//	q, err := b.Query()
package qflag

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	dsd "repro"
)

// Builder accumulates registered flags and assembles the Query.
type Builder struct {
	motif      *string
	algo       *string
	workers    *int
	iterative  *int
	shards     *int
	shardAddrs *string
	anchors    *string
	atLeast    *int
	eps        *float64
	deadline   *time.Duration
	gap        *float64
}

// New returns an empty builder.
func New() *Builder { return &Builder{} }

// Motif registers the pattern-name flag (any dsd.PatternByName name).
func (b *Builder) Motif(fs *flag.FlagSet, name, value string) {
	b.motif = fs.String(name, value, "motif: edge, triangle, h-clique, or a pattern name")
}

// Algo registers the algorithm flag. An empty value infers the
// algorithm: anchored / at-least / batch-peel when their parameter flag
// is set, core-exact otherwise.
func (b *Builder) Algo(fs *flag.FlagSet, name, value string) {
	b.algo = fs.String(name, value,
		"algorithm: exact, core-exact, peel, inc, core-app, nucleus, anchored, batch-peel, at-least (\"\" = auto)")
}

// Workers registers the intra-query parallelism flag (0 or 1 = serial,
// -1 = GOMAXPROCS).
func (b *Builder) Workers(fs *flag.FlagSet, name, usage string) {
	b.workers = fs.Int(name, 0, usage)
}

// Iterative registers the Greed++ pre-solve budget flag (0 = engine
// default, negative = off, positive = iteration budget).
func (b *Builder) Iterative(fs *flag.FlagSet, name, usage string) {
	b.iterative = fs.Int(name, 0, usage)
}

// Shards registers the distributed-execution cap flag (0 = every
// available shard worker, positive = cap, negative = force local).
func (b *Builder) Shards(fs *flag.FlagSet, name, usage string) {
	b.shards = fs.Int(name, 0, usage)
}

// ShardAddrs registers the shard-worker base-URL list flag
// ("http://h1:8080,http://h2:8080").
func (b *Builder) ShardAddrs(fs *flag.FlagSet, name, usage string) {
	b.shardAddrs = fs.String(name, "", usage)
}

// Anchors registers the anchored-query vertex list flag ("1,2,5").
func (b *Builder) Anchors(fs *flag.FlagSet, name string) {
	b.anchors = fs.String(name, "", "anchored query vertices as a comma-separated list (selects algo=anchored)")
}

// AtLeast registers the minimum-answer-size flag.
func (b *Builder) AtLeast(fs *flag.FlagSet, name string) {
	b.atLeast = fs.Int(name, 0, "minimum answer size k ≥ 1 (selects algo=at-least)")
}

// Eps registers the batch-peel slack flag.
func (b *Builder) Eps(fs *flag.FlagSet, name string) {
	b.eps = fs.Float64(name, 0, "batch-peel slack ε > 0 (selects algo=batch-peel)")
}

// Deadline registers the core-exact degradation deadline flag: a
// wall-clock budget after which the best certified answer returns with
// Degraded bounds instead of running to exactness (0 = off).
func (b *Builder) Deadline(fs *flag.FlagSet, name string) {
	b.deadline = fs.Duration(name, 0,
		"core-exact degradation deadline, e.g. 500ms: return the best certified answer with bounds when exceeded (0 = exact)")
}

// Gap registers the core-exact accuracy-budget flag: component searches
// may stop once their bound interval is within this relative gap
// (0 = exact).
func (b *Builder) Gap(fs *flag.FlagSet, name string) {
	b.gap = fs.Float64(name, 0,
		"core-exact relative accuracy budget, e.g. 0.05: stop component searches within this gap of certainty (0 = exact)")
}

// BudgetSet reports whether a parsed anytime budget flag (deadline or
// gap) carries a non-zero value — the flags that only make sense on the
// core-exact engine.
func (b *Builder) BudgetSet() bool {
	return (b.deadline != nil && *b.deadline > 0) || (b.gap != nil && *b.gap > 0)
}

// InferCoreExact rewrites the parsed algorithm flag to core-exact and
// returns the name it replaced, or "" when nothing changed (the flag was
// unset, unregistered, or already core-exact). CLIs call it when an
// anytime flag (-deadline, -gap, -stream) was given with a conflicting
// algorithm, so the budget wins with a warning instead of erroring in
// Query's normalization.
func (b *Builder) InferCoreExact() string {
	if b.algo == nil {
		return ""
	}
	old := *b.algo
	if old == "" || old == string(dsd.AlgoCoreExact) {
		return ""
	}
	*b.algo = string(dsd.AlgoCoreExact)
	return old
}

// Query assembles the dsd.Query from the registered flags' parsed values
// and normalizes it, so flag mistakes (unknown motif or algorithm,
// conflicting variant parameters) surface here with the library's
// messages instead of mid-run.
func (b *Builder) Query() (dsd.Query, error) {
	var q dsd.Query
	if b.motif != nil && *b.motif != "" {
		p, err := dsd.PatternByName(*b.motif)
		if err != nil {
			return dsd.Query{}, err
		}
		q.Pattern = p
	}
	if b.algo != nil && *b.algo != "" {
		a, err := dsd.ParseAlgo(*b.algo)
		if err != nil {
			return dsd.Query{}, err
		}
		q.Algo = a
	}
	if b.workers != nil {
		q.Workers = *b.workers
		if q.Workers < 0 {
			q.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if b.iterative != nil {
		q.Iterative = *b.iterative
	}
	if b.shards != nil {
		q.Shards = *b.shards
	}
	if b.shardAddrs != nil && *b.shardAddrs != "" {
		for _, a := range strings.Split(*b.shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				q.ShardAddrs = append(q.ShardAddrs, a)
			}
		}
	}
	if b.anchors != nil && *b.anchors != "" {
		anchors, err := parseAnchors(*b.anchors)
		if err != nil {
			return dsd.Query{}, err
		}
		q.Anchors = anchors
	}
	if b.atLeast != nil {
		q.AtLeast = *b.atLeast
	}
	if b.eps != nil {
		q.Eps = *b.eps
	}
	if b.deadline != nil {
		q.Deadline = *b.deadline
	}
	if b.gap != nil {
		q.Gap = *b.gap
	}
	return q.Normalized()
}

// parseAnchors parses "1,2,5" into vertex ids.
func parseAnchors(s string) ([]int32, error) {
	parts := strings.Split(s, ",")
	anchors := make([]int32, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseInt(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("qflag: bad anchor vertex %q: %w", p, err)
		}
		anchors = append(anchors, int32(v))
	}
	if len(anchors) == 0 {
		return nil, fmt.Errorf("qflag: empty anchor list %q", s)
	}
	return anchors, nil
}
