package core

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/motif"
	"repro/internal/pattern"
	"repro/internal/rational"
)

// TestCoreExactIterativeEquivalence is the exactness proof obligation of
// the Greed++ pre-solver: across ~50 random graphs and h ∈ {2,3,4}, the
// pre-solved engine — serial and on a worker pool — must return exactly
// the density of the seed Exact path (rational comparison, not float),
// with a witness whose recomputed density matches. Run under -race this
// also exercises pre-solve publications racing into the shared bound cell.
func TestCoreExactIterativeEquivalence(t *testing.T) {
	for gi, g := range equivalenceGraphs(t) {
		for h := 2; h <= 4; h++ {
			want := Exact(g, h).Density
			serial := DefaultOptions() // pre-solver on by default
			par := DefaultOptions()
			par.Workers = 4
			for mode, opts := range map[string]Options{"serial": serial, "parallel": par} {
				res := CoreExactOpts(g, h, opts)
				if res.Density.Cmp(want) != 0 {
					t.Fatalf("graph %d h=%d %s: pre-solved density %v != exact %v",
						gi, h, mode, res.Density, want)
				}
				if len(res.Vertices) > 0 {
					if d, _ := densityOf(g, motif.Clique{H: h}, res.Vertices); d.Cmp(res.Density) != 0 {
						t.Fatalf("graph %d h=%d %s: witness density %v != reported %v",
							gi, h, mode, d, res.Density)
					}
				}
			}
		}
	}
}

// TestCorePExactIterativeEquivalence extends the obligation to pattern
// cores: pre-solved CorePExact against the seed PExact path.
func TestCorePExactIterativeEquivalence(t *testing.T) {
	pats := []*pattern.Pattern{pattern.Star(2), pattern.Diamond()}
	gs := equivalenceGraphs(t)[:10]
	for gi, g := range gs {
		for _, p := range pats {
			want := PExact(g, p).Density
			opts := DefaultOptions()
			opts.Workers = 3
			res := CorePExactOpts(g, p, opts)
			if res.Density.Cmp(want) != 0 {
				t.Fatalf("graph %d pattern %s: pre-solved density %v != exact %v",
					gi, p.Name(), res.Density, want)
			}
		}
	}
}

// TestCoreExactIterativeBudgets: the budget knob must be answer-invariant
// — tiny budgets (bounds barely help), the default, and budgets past
// convergence all return the seed density.
func TestCoreExactIterativeBudgets(t *testing.T) {
	gs := equivalenceGraphs(t)[:8]
	for gi, g := range gs {
		want := CoreExactOpts(g, 3, Options{
			Pruning1: true, Pruning2: true, Pruning3: true, Grouped: true,
		}).Density // Iterative: 0 — the flow-only seed engine
		for _, budget := range []int{1, 2, DefaultIterativeBudget, 64} {
			opts := DefaultOptions()
			opts.Iterative = budget
			got := CoreExactOpts(g, 3, opts).Density
			if got.Cmp(want) != 0 {
				t.Fatalf("graph %d budget %d: density %v, want %v", gi, budget, got, want)
			}
		}
	}
}

// TestCoreExactIterativePruningVariants runs the Figure-10 pruning
// ablations with the pre-solver on: the answer must not depend on which
// prunings accompany it, serial or parallel.
func TestCoreExactIterativePruningVariants(t *testing.T) {
	gs := equivalenceGraphs(t)[:6]
	variants := []Options{
		{Pruning1: false, Pruning2: true, Pruning3: true, Grouped: true, Iterative: DefaultIterativeBudget},
		{Pruning1: true, Pruning2: false, Pruning3: true, Grouped: true, Iterative: DefaultIterativeBudget},
		{Pruning1: true, Pruning2: true, Pruning3: false, Grouped: true, Iterative: DefaultIterativeBudget},
	}
	for gi, g := range gs {
		want := Exact(g, 3).Density
		for vi, opts := range variants {
			for _, workers := range []int{0, 3} {
				opts.Workers = workers
				got := CoreExactOpts(g, 3, opts).Density
				if got.Cmp(want) != 0 {
					t.Fatalf("graph %d variant %d workers %d: density %v, want %v",
						gi, vi, workers, got, want)
				}
			}
		}
	}
}

// TestCoreExactIterativeMultiCommunity pins the stress instance with the
// pre-solver on: the known optimum must come back for every worker count,
// and the pre-solver must actually relieve the flow engine (fewer min-cut
// solves than the seed configuration, with flow-free component finishes).
func TestCoreExactIterativeMultiCommunity(t *testing.T) {
	const k, clique, fringe, fringeBase = 6, 20, 8, 12
	g := gen.MultiCommunity(k, clique, fringe, fringeBase, 14, 1)
	tmax := int64(fringeBase + k - 1)
	mu := int64(clique*(clique-1)*(clique-2)/6) + int64(fringe)*tmax*(tmax-1)/2
	want := rational.New(mu, int64(clique+fringe))

	seed := DefaultOptions()
	seed.Iterative = 0
	seedRes := CoreExactOpts(g, 3, seed)
	if seedRes.Density.Cmp(want) != 0 {
		t.Fatalf("seed engine: density %v, want %v", seedRes.Density, want)
	}
	for _, w := range []int{0, 1, 2, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = w
		res := CoreExactOpts(g, 3, opts)
		if res.Density.Cmp(want) != 0 {
			t.Fatalf("workers=%d: density %v, want %v", w, res.Density, want)
		}
		if res.Stats.Iterations > seedRes.Stats.Iterations {
			t.Fatalf("workers=%d: pre-solved engine spent %d flow solves, seed %d",
				w, res.Stats.Iterations, seedRes.Stats.Iterations)
		}
		if res.Stats.PreSolveIters == 0 {
			t.Fatalf("workers=%d: pre-solver did not run", w)
		}
		if w <= 1 && res.Stats.PreSolveSkips == 0 {
			t.Fatalf("workers=%d: no component finished flow-free on the stress instance", w)
		}
	}
}

// TestCoreExactIterativeStats: the seed configuration must report zero
// pre-solve work, and the default configuration must report it without
// perturbing the density — the counters the BENCH artifact and the wire
// encoding surface.
func TestCoreExactIterativeStats(t *testing.T) {
	g := gen.ChungLu(80, 320, 2.3, 5)
	seed := DefaultOptions()
	seed.Iterative = 0
	rs := CoreExactOpts(g, 3, seed)
	if rs.Stats.PreSolveIters != 0 || rs.Stats.PreSolveSkips != 0 {
		t.Fatalf("seed engine reports pre-solve work: %+v", rs.Stats)
	}
	ri := CoreExact(g, 3)
	if ri.Stats.PreSolveIters == 0 {
		t.Fatal("default engine reports no pre-solve iterations")
	}
	if rs.Density.Cmp(ri.Density) != 0 {
		t.Fatalf("density changed: %v vs %v", rs.Density, ri.Density)
	}
}

// TestExactPreSolveSeeding: the whole-graph Exact/PExact baselines now
// seed their binary search from Greed++ bounds (ROADMAP item). The
// density must agree with the flow-only CoreExact seed engine — two
// independent algorithms — and the stats must show the pre-solver ran.
func TestExactPreSolveSeeding(t *testing.T) {
	seed := Options{Pruning1: true, Pruning2: true, Pruning3: true, Grouped: true}
	for gi, g := range equivalenceGraphs(t)[:10] {
		for h := 2; h <= 3; h++ {
			e := Exact(g, h)
			want := CoreExactOpts(g, h, seed)
			if e.Density.Cmp(want.Density) != 0 {
				t.Fatalf("graph %d h=%d: seeded Exact density %v != core-exact %v",
					gi, h, e.Density, want.Density)
			}
			if e.Density.IsZero() {
				continue
			}
			if e.Stats.PreSolveIters == 0 {
				t.Fatalf("graph %d h=%d: Exact did not run the pre-solver", gi, h)
			}
		}
	}
	g := equivalenceGraphs(t)[0]
	p := pattern.Star(2)
	pe := PExact(g, p)
	want := CorePExactOpts(g, p, seed)
	if pe.Density.Cmp(want.Density) != 0 {
		t.Fatalf("seeded PExact density %v != core-p-exact %v", pe.Density, want.Density)
	}
	if pe.Stats.PreSolveIters == 0 {
		t.Fatal("PExact did not run the pre-solver")
	}
}

// TestSearchComponentFloorCell: the exported component entrypoint with a
// FloorCell — the distributed worker's path — must agree with the serial
// engine when handed the engine's own plan, component by component.
func TestSearchComponentFloorCell(t *testing.T) {
	g := gen.MultiCommunity(5, 14, 6, 9, 10, 1)
	o := motif.Clique{H: 3}
	opts := DefaultOptions()
	plan, err := PlanCoreExact(context.Background(), g, o, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Components) < 2 {
		t.Fatalf("stress instance yielded %d components", len(plan.Components))
	}
	want := CoreExactOpts(g, 3, opts)

	// Sequential floor-cell execution in plan order reproduces the
	// serial engine's merge exactly.
	best := plan.Lower
	witness := plan.Witness
	for i, comp := range plan.Components {
		cell := NewFloorCell(best)
		out, err := SearchComponent(context.Background(), g, o, plan.Dec, opts, cell, comp, plan.KLocate)
		if err != nil {
			t.Fatalf("component %d: %v", i, err)
		}
		if len(out.Witness) > 0 {
			if d, _ := densityOf(g, o, out.Witness); d.Cmp(out.Density) != 0 {
				t.Fatalf("component %d: outcome density %v != recomputed %v", i, out.Density, d)
			}
			if out.Density.Greater(best) {
				best = out.Density
				witness = out.Witness
			}
		}
	}
	if best.Cmp(want.Density) != 0 {
		t.Fatalf("merged floor-cell density %v != engine %v", best, want.Density)
	}
	if d, _ := densityOf(g, o, witness); d.Cmp(want.Density) != 0 {
		t.Fatalf("merged witness density %v != engine %v", d, want.Density)
	}

	// A floor already at the optimum means no component can improve: the
	// searches must come back witness-less, never with a worse answer.
	for i, comp := range plan.Components {
		cell := NewFloorCell(want.Density)
		out, err := SearchComponent(context.Background(), g, o, plan.Dec, opts, cell, comp, plan.KLocate)
		if err != nil {
			t.Fatalf("component %d: %v", i, err)
		}
		if len(out.Witness) != 0 {
			t.Fatalf("component %d: floor at optimum still produced witness %v (density %v)",
				i, out.Witness, out.Density)
		}
	}
}
