// Parallel execution substrate for the exact hot path: CoreExact's and
// CorePExact's per-component binary searches are independent except for
// the global lower bound l, so they run on a bounded worker pool that
// shares (l, witness) through a mutex-protected monotone cell. A density
// improvement found in one component immediately raises the probe
// threshold, shrinks the cores, and arms the can't-beat abort of every
// other component — the shared-memory design of arXiv:2103.00154 applied
// to Algorithm 4's component loop. Sharing only ever removes work, so the
// returned density is identical to the serial engine's for any worker
// count (asserted under -race by TestCoreExactParallelEquivalence).
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/rational"
)

// BoundSource is the certified global lower bound a component search
// reads and publishes to. Implementations must be safe for concurrent
// use and monotone: Bound never decreases, and Improve installs (d, w)
// only when d strictly beats the current bound. The in-process engines
// share a boundCell; the distributed coordinator injects a FloorCell on
// each shard whose floor it rebroadcasts as sibling shards report in —
// searchComponent's exactness argument only needs the bound to be the
// density of some real subgraph of the same graph, wherever it lives.
type BoundSource interface {
	// Bound returns the current certified lower bound.
	Bound() rational.R
	// Improve installs (d, w) iff d strictly beats the current bound,
	// reporting whether it did. Callers pass w slices they will not
	// mutate.
	Improve(d rational.R, w []int32) bool
}

// boundCell is the shared monotone (lower bound, witness) pair. The bound
// only rises, and it always holds the exact density of the witness beside
// it, so readers can use it as a certified global lower bound at any
// moment without synchronizing with the writer's search.
type boundCell struct {
	mu      sync.Mutex
	lower   rational.R
	witness []int32
}

// Bound returns the current lower bound.
func (c *boundCell) Bound() rational.R {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lower
}

// snapshot returns the current (bound, witness) pair.
func (c *boundCell) snapshot() (rational.R, []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lower, c.witness
}

// Improve installs (d, w) iff d strictly beats the current bound,
// reporting whether it did. Callers pass w slices they will not mutate.
func (c *boundCell) Improve(d rational.R, w []int32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !d.Greater(c.lower) {
		return false
	}
	c.lower = d
	c.witness = w
	return true
}

// runIndexed invokes fn(0) … fn(n-1) on min(workers, n) goroutines.
// Indices are claimed in ascending order (an atomic cursor, not static
// striping), so with CoreExact's densest-first component ordering the
// pool starts the most promising searches first and idle workers steal
// whatever is next. workers ≤ 1 degenerates to a plain loop on the
// caller's goroutine — the serial engine and the parallel engine are the
// same code path.
func runIndexed(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
