package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/motif"
	"repro/internal/psicore"
)

// BenchSchema identifies the perf-suite report encoding. CI validates
// every emitted BENCH_*.json against it, so the perf trajectory the
// repository accumulates stays machine-readable across PRs.
const BenchSchema = "dsd-bench/v1"

// BenchReport is the JSON artifact of the perf suite (BENCH_*.json): one
// entry per measured case, serial ns/op always, plus the parallel arm and
// its speedup for the algorithms with a parallel engine.
type BenchReport struct {
	Schema     string      `json:"schema"`
	Suite      string      `json:"suite"`
	Quick      bool        `json:"quick"`
	Workers    int         `json:"workers"`
	GoMaxProcs int         `json:"gomaxprocs"`
	GoVersion  string      `json:"go_version"`
	Cases      []BenchCase `json:"cases"`
}

// BenchCase measures one (algorithm, motif, graph) cell.
type BenchCase struct {
	Name  string `json:"name"`
	Algo  string `json:"algo"`
	Motif string `json:"motif"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	// SerialNsOp is the serial engine's wall time per run.
	SerialNsOp int64 `json:"serial_ns_op"`
	// ParallelNsOp, Workers and Speedup describe the parallel arm; they
	// are present only for cases with a parallel engine.
	ParallelNsOp int64   `json:"parallel_ns_op,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	// SerialIters/ParallelIters count binary-search flow solves for the
	// exact algorithms: the parallel engine's speedup is algorithmic
	// (shared-bound aborts remove work), and these make it visible in
	// the artifact rather than only in wall time.
	SerialIters   int `json:"serial_iters,omitempty"`
	ParallelIters int `json:"parallel_iters,omitempty"`
	// Density is the result density (omitted for decomposition cases).
	Density float64 `json:"density,omitempty"`
	// DensityMatch reports that the parallel arm returned exactly the
	// serial density (rational comparison, not float). CI fails the
	// bench gate when a parallel case does not match.
	DensityMatch *bool `json:"density_match,omitempty"`
}

// perfWorkers resolves the parallel arm's worker count.
func perfWorkers(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return 4
}

// bestOf times fn over reps runs and returns the fastest, the standard
// guard against scheduler noise on shared runners.
func bestOf(reps int, fn func()) int64 {
	best := int64(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// PerfSuiteReport measures the suite and returns the report. The cases
// cover the exact hot path this repository optimizes (CoreExact serial
// vs parallel on the multi-component stress instance, h ∈ {2,3}), the
// parallel clique-degree seeding, and the approximation baselines that
// frame them.
func PerfSuiteReport(cfg Config) (*BenchReport, error) {
	reps := 3
	if cfg.Quick {
		reps = 2
	}
	workers := perfWorkers(cfg)
	rep := &BenchReport{
		Schema:     BenchSchema,
		Suite:      "perfsuite",
		Quick:      cfg.Quick,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	// The multi-component stress instance (see gen.MultiCommunity): the
	// serial engine fully searches component after component, the
	// parallel engine shares the bound and aborts most of them.
	multi := gen.MultiCommunity(10, 30, 12, 18, 20, 1)
	if cfg.Quick {
		multi = gen.MultiCommunity(8, 25, 10, 15, 18, 1)
	}
	// A power-law graph: the single-dense-region regime where the
	// parallel engine degenerates to ~serial work (honest lower end).
	cl := gen.ChungLu(3000/cfg.Div, 15000/cfg.Div, 2.5, 9)

	coreExactCase := func(name string, g *graph.Graph, h int) BenchCase {
		var serialRes, parRes *core.Result
		serial := bestOf(reps, func() { serialRes = core.CoreExact(g, h) })
		opts := core.DefaultOptions()
		opts.Workers = workers
		par := bestOf(reps, func() { parRes = core.CoreExactOpts(g, h, opts) })
		match := serialRes.Density.Cmp(parRes.Density) == 0
		return BenchCase{
			Name:          name,
			Algo:          "core-exact",
			Motif:         motif.Clique{H: h}.Name(),
			N:             g.N(),
			M:             g.M(),
			SerialNsOp:    serial,
			ParallelNsOp:  par,
			Workers:       workers,
			Speedup:       float64(serial) / float64(par),
			SerialIters:   serialRes.Stats.Iterations,
			ParallelIters: parRes.Stats.Iterations,
			Density:       serialRes.Density.Float(),
			DensityMatch:  &match,
		}
	}
	serialCase := func(name, algo string, g *graph.Graph, h int, run func() *core.Result) BenchCase {
		var res *core.Result
		ns := bestOf(reps, func() { res = run() })
		return BenchCase{
			Name:       name,
			Algo:       algo,
			Motif:      motif.Clique{H: h}.Name(),
			N:          g.N(),
			M:          g.M(),
			SerialNsOp: ns,
			Density:    res.Density.Float(),
		}
	}

	rep.Cases = append(rep.Cases,
		coreExactCase("coreexact-multicommunity", multi, 3),
		coreExactCase("coreexact-chunglu-edge", cl, 2),
		coreExactCase("coreexact-chunglu-triangle", cl, 3),
		serialCase("coreapp-chunglu-triangle", "core-app", cl, 3, func() *core.Result {
			return core.CoreApp(cl, motif.Clique{H: 3})
		}),
		serialCase("peel-chunglu-triangle", "peel", cl, 3, func() *core.Result {
			return core.PeelApp(cl, motif.Clique{H: 3})
		}),
	)

	// Parallel clique-degree seeding of the (k,Ψ)-core decomposition.
	{
		o := motif.Clique{H: 4}
		var serialDec, parDec *psicore.Decomposition
		serial := bestOf(reps, func() { serialDec = psicore.Decompose(cl, o) })
		par := bestOf(reps, func() { parDec = psicore.DecomposeWorkers(cl, o, workers) })
		match := serialDec.KMax == parDec.KMax
		rep.Cases = append(rep.Cases, BenchCase{
			Name:         "decompose-seed-chunglu-4clique",
			Algo:         "decompose",
			Motif:        o.Name(),
			N:            cl.N(),
			M:            cl.M(),
			SerialNsOp:   serial,
			ParallelNsOp: par,
			Workers:      workers,
			Speedup:      float64(serial) / float64(par),
			DensityMatch: &match,
		})
	}
	return rep, nil
}

// RunPerfSuite measures the suite and prints it as a table (the JSON
// artifact is emitted by `dsdbench -run perfsuite -json`).
func RunPerfSuite(cfg Config) error {
	rep, err := PerfSuiteReport(cfg)
	if err != nil {
		return err
	}
	t := newTable(cfg.Out, "case", "algo", "motif", "serial", "parallel", "speedup", "match")
	for _, c := range rep.Cases {
		par, speed, match := "-", "-", "-"
		if c.ParallelNsOp > 0 {
			par = secs(time.Duration(c.ParallelNsOp))
			speed = fmt.Sprintf("%.2fx", c.Speedup)
			match = fmt.Sprintf("%v", *c.DensityMatch)
		}
		t.row(c.Name, c.Algo, c.Motif, secs(time.Duration(c.SerialNsOp)), par, speed, match)
	}
	t.flush()
	return nil
}

// WriteBenchReport encodes rep as indented JSON.
func WriteBenchReport(w io.Writer, rep *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ValidateBenchReport checks that data is a well-formed BenchReport: the
// schema tag, at least one case, positive timings, and — the correctness
// gate — an exact density match on every case that ran a parallel arm.
// CI runs it against the emitted artifact and fails the bench job on any
// violation.
func ValidateBenchReport(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep BenchReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return fmt.Errorf("bench report: schema %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Suite == "" {
		return fmt.Errorf("bench report: missing suite")
	}
	if rep.Workers <= 0 {
		return fmt.Errorf("bench report: workers %d, want > 0", rep.Workers)
	}
	if len(rep.Cases) == 0 {
		return fmt.Errorf("bench report: no cases")
	}
	for i, c := range rep.Cases {
		if c.Name == "" || c.Algo == "" {
			return fmt.Errorf("bench report: case %d: missing name/algo", i)
		}
		if c.SerialNsOp <= 0 {
			return fmt.Errorf("bench report: case %q: serial_ns_op %d, want > 0", c.Name, c.SerialNsOp)
		}
		if c.ParallelNsOp < 0 {
			return fmt.Errorf("bench report: case %q: negative parallel_ns_op", c.Name)
		}
		if c.ParallelNsOp > 0 {
			if c.Workers <= 0 {
				return fmt.Errorf("bench report: case %q: parallel arm without workers", c.Name)
			}
			if c.Speedup <= 0 {
				return fmt.Errorf("bench report: case %q: parallel arm without speedup", c.Name)
			}
			if c.DensityMatch == nil {
				return fmt.Errorf("bench report: case %q: parallel arm without density_match", c.Name)
			}
			if !*c.DensityMatch {
				return fmt.Errorf("bench report: case %q: parallel density does not match serial", c.Name)
			}
		}
	}
	return nil
}
