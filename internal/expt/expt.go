// Package expt regenerates every table and figure of the paper's
// evaluation (Section 8 and the appendix) on the synthetic dataset
// stand-ins. Each experiment prints rows mirroring the paper's artifact;
// EXPERIMENTS.md records paper-vs-measured shape comparisons.
//
// The harness is deliberately budget-aware: cells whose flow networks or
// instance sets would exceed the configured budget are reported as "t/o",
// exactly how the paper reports Exact/PExact bars that hit the 2-5 day
// ceiling.
package expt

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/motif"
	"repro/internal/pattern"
)

// Config tunes an experiment run.
type Config struct {
	// Out receives the experiment's table output.
	Out io.Writer
	// Div further divides every dataset's default scale (1 = defaults).
	Div int
	// MaxH caps the clique sizes swept (paper: 6).
	MaxH int
	// LinkBudget caps the number of instance-membership links a flow
	// network may have before the cell is skipped as "t/o".
	LinkBudget int64
	// InstanceBudget caps materialized instance counts (PExact, Nucleus).
	InstanceBudget int64
	// Quick shrinks workloads for smoke tests and benchmarks.
	Quick bool
	// Workers is the parallel arm measured by the perf suite against the
	// serial engine (0 = the reference arm of 4, matching the CI gate).
	Workers int
	// Iterative is the Greed++ pre-solve budget of the perf suite's
	// iterative arm (0 = the engine default).
	Iterative int
}

// DefaultConfig returns the full-harness configuration.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Out:            out,
		Div:            1,
		MaxH:           6,
		LinkBudget:     30_000_000,
		InstanceBudget: 5_000_000,
	}
}

// QuickConfig returns a configuration sized for benchmarks: smaller
// datasets, h ≤ 4, tight budgets.
func QuickConfig(out io.Writer) Config {
	c := DefaultConfig(out)
	c.Div = 8
	c.MaxH = 4
	c.LinkBudget = 2_000_000
	c.InstanceBudget = 500_000
	c.Quick = true
	return c
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the harness name ("fig8exact", "table3", …).
	ID string
	// Title cites the paper artifact.
	Title string
	// Run executes the experiment and writes its table to cfg.Out.
	Run func(cfg Config) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2 / Figure 18: dataset statistics", RunTable2},
		{"fig8exact", "Figure 8(a-e): efficiency of exact CDS algorithms", RunFig8Exact},
		{"fig8approx", "Figure 8(f-j): efficiency of approximation CDS algorithms", RunFig8Approx},
		{"fig9", "Figure 9: flow network sizes in CoreExact", RunFig9},
		{"fig10", "Figure 10: effect of pruning criteria in CoreExact", RunFig10},
		{"table3", "Table 3: % of time cost of core decomposition", RunTable3},
		{"table4", "Table 4: efficiency of EMcore and CoreApp", RunTable4},
		{"fig11", "Figure 11: approximation ratio", RunFig11},
		{"fig12", "Figure 12: CoreExact and CoreApp", RunFig12},
		{"fig13", "Figure 13: exact CDS algorithms on random graphs", RunFig13},
		{"fig14", "Figure 14: approximation CDS algorithms on random graphs", RunFig14},
		{"table5", "Table 5: edge/clique/pattern densities of CDS's and PDS's", RunTable5},
		{"fig15", "Figure 15: efficiency of exact PDS algorithms", RunFig15},
		{"fig16", "Figure 16: efficiency of approximation PDS algorithms", RunFig16},
		{"fig17", "Figure 17: densest subgraphs in the DBLP network", RunFig17},
		{"fig20", "Figure 20: approximation CDS on additional datasets", RunFig20},
		{"fig21", "Figure 21: PDS's in the yeast PPI network", RunFig21},
		{"perfsuite", "Perf suite: serial vs parallel engines (BENCH_*.json)", RunPerfSuite},
	}
}

// Get resolves an experiment by ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
}

// table is a minimal fixed-width table printer.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer, header ...string) *table {
	t := &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
	row := ""
	for i, h := range header {
		if i > 0 {
			row += "\t"
		}
		row += h
	}
	fmt.Fprintln(t.w, row)
	return t
}

func (t *table) row(cells ...string) {
	row := ""
	for i, c := range cells {
		if i > 0 {
			row += "\t"
		}
		row += c
	}
	fmt.Fprintln(t.w, row)
}

func (t *table) flush() { t.w.Flush() }

// secs formats a duration as seconds for table cells.
func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// load returns the dataset stand-in at the configured scale.
func load(cfg Config, spec datasets.Spec) *graph.Graph {
	div := spec.Div * cfg.Div
	return spec.LoadDiv(div)
}

// hRange returns the clique sizes to sweep.
func hRange(cfg Config) []int {
	var hs []int
	for h := 2; h <= cfg.MaxH; h++ {
		hs = append(hs, h)
	}
	return hs
}

// cliqueNetworkCost estimates the Algorithm-1 flow-network size for
// (g, h): the number of (h−1)-clique nodes and v→ψ links. Both counts
// bail out as soon as the budget is crossed, so an infeasible cell costs
// only the budget, not the full enumeration.
func cliqueNetworkCost(g *graph.Graph, h int, budget int64) (lambda, links int64, within bool) {
	if h == 2 {
		return 0, int64(g.M()), true
	}
	l := clique.NewLister(g)
	lambdaOK := l.ForEachStop(h-1, func([]int32) bool {
		lambda++
		return lambda <= budget
	})
	if !lambdaOK {
		return lambda, 0, false
	}
	linksOK := l.ForEachStop(h, func([]int32) bool {
		links += int64(h)
		return links <= budget
	})
	return lambda, links, linksOK
}

// motifInstanceCost counts instances for budget checks, bailing out early
// once the budget is crossed.
func motifInstanceCost(g *graph.Graph, o motif.Oracle, budget int64) (int64, bool) {
	return motif.CountWithin(o, g, budget)
}

// timeIt measures fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// seedCoreExact and seedCorePExact run the core engines in their paper
// configuration — flow-only, Greed++ pre-solver off. The reproduction
// experiments (Figures 8-16, Tables 3-5) must keep measuring the paper's
// algorithm even though the library default now pre-solves; Figure 9 in
// particular plots the networks the flow binary search builds, which the
// pre-solver exists to skip. The perf suite measures the pre-solved
// engine separately, against these as its seed arms.
func seedCoreExact(g *graph.Graph, h int) *core.Result {
	opts := core.DefaultOptions()
	opts.Iterative = 0
	return core.CoreExactOpts(g, h, opts)
}

// seedCorePExact is seedCoreExact for pattern motifs.
func seedCorePExact(g *graph.Graph, p *pattern.Pattern) *core.Result {
	opts := core.DefaultOptions()
	opts.Iterative = 0
	return core.CorePExactOpts(g, p, opts)
}
