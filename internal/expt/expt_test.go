package expt

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// smokeConfig is far smaller than QuickConfig: every experiment must
// complete in well under a second so the whole suite stays fast.
func smokeConfig(out io.Writer) Config {
	c := QuickConfig(out)
	c.Div = 64
	c.MaxH = 3
	c.LinkBudget = 200_000
	c.InstanceBudget = 100_000
	return c
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment smoke test in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := smokeConfig(&buf)
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestGetAndAll(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("experiments = %d, want 18", len(all))
	}
	for _, e := range all {
		got, err := Get(e.ID)
		if err != nil {
			t.Fatalf("Get(%s): %v", e.ID, err)
		}
		if got.ID != e.ID {
			t.Fatalf("Get(%s) returned %s", e.ID, got.ID)
		}
	}
	if _, err := Get("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable(&buf, "a", "b")
	tab.row("1", "2")
	tab.row("333", "4")
	tab.flush()
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Fatalf("table output %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d, want 3", len(lines))
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig(io.Discard)
	q := QuickConfig(io.Discard)
	if q.Div <= d.Div || q.MaxH >= d.MaxH {
		t.Fatal("QuickConfig not smaller than DefaultConfig")
	}
	if !q.Quick || d.Quick {
		t.Fatal("Quick flags wrong")
	}
}
