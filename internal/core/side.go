package core

import (
	"repro/internal/flow"
	"repro/internal/flownet"
	"repro/internal/graph"
	"repro/internal/motif"
)

// side abstracts the flow-network construction for one fixed graph so the
// binary-search drivers (Exact, CoreExact, PExact, CorePExact) are written
// once. A side is built per graph (or per component) and can then emit
// networks for any α.
type side interface {
	// Build returns the flow network for guess α. The network's arena is
	// recycled across calls: a Build invalidates every Net the side
	// returned before, which suits the binary-search drivers' strict
	// build→solve→discard cadence.
	Build(alpha float64) *flownet.Net
	// Nodes returns the network's node count (Figure 9's metric).
	Nodes() int
	// MaxMotifDeg is max_v deg(v,Ψ), the initial binary-search upper bound
	// of Algorithm 1.
	MaxMotifDeg() int64
}

// makeSide picks the network family: Goldberg's simplified network for
// edges, the (h−1)-clique network for h-cliques, and the instance network
// for patterns (grouped = construct+).
func makeSide(g *graph.Graph, o motif.Oracle, grouped bool) side {
	return makeSideReusing(g, o, grouped, nil)
}

// makeSideReusing is makeSide seeding the new side with a recycled
// network arena (nil for a fresh one) — CoreExact hands the pre-shrink
// side's network over when a component relocates to a higher core, so
// shrinking never restarts the allocation reuse.
func makeSideReusing(g *graph.Graph, o motif.Oracle, grouped bool, net *flow.Network) side {
	if c, ok := o.(motif.Clique); ok {
		if c.H == 2 {
			return &edsSide{g: g, net: net}
		}
		return &cdsSide{n: g.N(), cs: flownet.NewCliqueSide(g, c.H), net: net}
	}
	return &pdsSide{n: g.N(), ps: flownet.NewPatternSide(g, o, grouped), net: net}
}

// takeNet surrenders a side's network arena for reuse by a successor.
func takeNet(sd side) *flow.Network {
	switch s := sd.(type) {
	case *edsSide:
		return s.net
	case *cdsSide:
		return s.net
	case *pdsSide:
		return s.net
	}
	return nil
}

type edsSide struct {
	g   *graph.Graph
	net *flow.Network
}

func (s *edsSide) Build(alpha float64) *flownet.Net {
	nn := flownet.BuildEDSInto(s.net, s.g, alpha)
	s.net = nn.Network
	return nn
}
func (s *edsSide) Nodes() int         { return 2 + s.g.N() }
func (s *edsSide) MaxMotifDeg() int64 { return int64(s.g.MaxDegree()) }

type cdsSide struct {
	n   int
	cs  *flownet.CliqueSide
	net *flow.Network
}

func (s *cdsSide) Build(alpha float64) *flownet.Net {
	nn := flownet.BuildCDSInto(s.net, s.n, s.cs, alpha)
	s.net = nn.Network
	return nn
}
func (s *cdsSide) Nodes() int { return s.cs.NumNodes(s.n) }
func (s *cdsSide) MaxMotifDeg() int64 {
	var d int64
	for _, x := range s.cs.Deg {
		if x > d {
			d = x
		}
	}
	return d
}

type pdsSide struct {
	n   int
	ps  *flownet.PatternSide
	net *flow.Network
}

func (s *pdsSide) Build(alpha float64) *flownet.Net {
	nn := flownet.BuildPDSInto(s.net, s.n, s.ps, alpha)
	s.net = nn.Network
	return nn
}
func (s *pdsSide) Nodes() int { return s.ps.NumNodes(s.n) }
func (s *pdsSide) MaxMotifDeg() int64 {
	var d int64
	for _, x := range s.ps.Deg {
		if x > d {
			d = x
		}
	}
	return d
}
